// Package pmdag implements Section 3.3 of the paper: the parallel engine
// for the bounded-treewidth subgraph isomorphism DP.
//
// The decomposition tree is split into layered paths (Lemma 3.2, package
// treepath). Paths of one layer are independent and processed in
// parallel; along each path the DP's sequential chain is broken by
// materializing the directed acyclic *graph of partial matches* (Section
// 3.3.2): one DAG vertex per partial match of each node on the path, and
// an edge from a child-node state to a parent-node state whenever the
// transition rules allow it (for joins, whenever some valid state of the
// already-solved off-path child makes the pair compatible).
//
// Valid partial matches are exactly the DAG vertices reachable from the
// tagged sources: the valid states of the path's bottom node and every
// partial match that marks no vertex as matched-in-a-child (C = ∅ states
// are always realizable from the trivial all-unmatched match). To make
// the reachability low-depth, shortcuts are inserted into the forest F of
// no-new-match transitions (Section 3.3.3): F is itself decomposed into
// layered paths, hub vertices every ~log₂(V) positions receive shortcut
// edges of exponentially increasing hub distance, and every vertex gets an
// escape edge to the forest-parent of its path top. Any root-to-valid
// path then needs O(k log V) hops — at most k matching edges, and O(log V)
// hops per forest segment — which the breadth-first search's round count
// certifies empirically (Lemma 3.3).
package pmdag

import (
	"fmt"
	"math"
	"sync/atomic"

	"planarsi/internal/match"
	"planarsi/internal/par"
	"planarsi/internal/treedecomp"
	"planarsi/internal/treepath"
	"planarsi/internal/wd"
)

// Stats reports the structure of a run for the Figure 5 experiments.
type Stats struct {
	// Layers and Paths describe the Lemma 3.2 decomposition.
	Layers, Paths int
	// LongestPath is the longest decomposition-tree path (the sequential
	// chain the engine avoids).
	LongestPath int
	// DAGVertices / DAGEdges count partial-match DAG elements across all
	// paths; ForestEdges of those are no-new-match transitions, and
	// ShortcutEdges were added by the Section 3.3.3 construction.
	DAGVertices, DAGEdges, ForestEdges, ShortcutEdges int64
	// MaxHops is the largest BFS round count over all paths: the depth
	// of the reachability phase, O(k log n) per Lemma 3.3.
	MaxHops int
}

// Config tunes the engine; the zero value reproduces the paper's choices.
type Config struct {
	// ShortcutSpacing overrides the hub spacing of the Section 3.3.3
	// shortcut construction. 0 selects ceil(log2 V), the paper's
	// work-efficient choice; 1 places a hub at every forest vertex, the
	// Θ(log n)-work-overhead variant the paper warns about (kept for the
	// ablation benchmark).
	ShortcutSpacing int
}

// Run executes the parallel path-DAG engine with default configuration.
// It produces exactly the same per-node valid state sets as match.Run
// (the tests assert this), plain mode only. tr records work and depth.
func Run(p *match.Problem, tr *wd.Tracker) (*match.Result, *Stats) {
	return RunConfig(p, Config{}, tr)
}

// RunConfig is Run with explicit engine configuration.
func RunConfig(p *match.Problem, cfg Config, tr *wd.Tracker) (*match.Result, *Stats) {
	if p.Separating {
		panic("pmdag: separating mode is handled by the sequential engine")
	}
	eng := match.NewEngine(p)
	nd := p.ND
	layers := treepath.LayersParallel(nd.Parent, tr)
	pd := treepath.Decompose(nd.Parent, layers)
	stats := &Stats{Layers: pd.NumLayers, Paths: len(pd.Paths)}
	for _, path := range pd.Paths {
		if len(path) > stats.LongestPath {
			stats.LongestPath = len(path)
		}
	}
	var dagV, dagE, forestE, shortcutE atomic.Int64
	var maxHops atomic.Int64
	for _, pathIDs := range pd.PathsByLayer() {
		ids := pathIDs
		// All paths of a layer are independent: their bottom nodes only
		// depend on strictly lower layers (Lemma 3.2).
		par.For(0, len(ids), func(j int) {
			st := processPath(eng, pd.Paths[ids[j]], cfg, tr)
			dagV.Add(st.DAGVertices)
			dagE.Add(st.DAGEdges)
			forestE.Add(st.ForestEdges)
			shortcutE.Add(st.ShortcutEdges)
			for {
				cur := maxHops.Load()
				if int64(st.MaxHops) <= cur || maxHops.CompareAndSwap(cur, int64(st.MaxHops)) {
					break
				}
			}
		})
		tr.AddPhaseRounds("pmdag-layers", 1)
	}
	stats.DAGVertices = dagV.Load()
	stats.DAGEdges = dagE.Load()
	stats.ForestEdges = forestE.Load()
	stats.ShortcutEdges = shortcutE.Load()
	stats.MaxHops = int(maxHops.Load())
	return eng, stats
}

// bottomStates computes the complete valid state set of a path's bottom
// node directly from its (already solved) children.
func bottomStates(eng *match.Result, i int32) map[match.State]struct{} {
	nd := eng.Problem().ND
	switch nd.Kind[i] {
	case treedecomp.Leaf:
		s := match.EmptyState()
		return map[match.State]struct{}{s: {}}
	case treedecomp.Introduce:
		out := make(map[match.State]struct{})
		for cs := range eng.Sets[nd.Left[i]] {
			eng.IntroduceSuccessors(i, cs, func(s match.State, _ bool) {
				out[s] = struct{}{}
			})
		}
		return out
	case treedecomp.Forget:
		out := make(map[match.State]struct{})
		for cs := range eng.Sets[nd.Left[i]] {
			if s, ok := eng.ForgetSuccessor(i, cs); ok {
				out[s] = struct{}{}
			}
		}
		return out
	case treedecomp.Join:
		out := make(map[match.State]struct{})
		group := groupBySignature(eng.Sets[nd.Right[i]])
		for ls := range eng.Sets[nd.Left[i]] {
			for _, rs := range group[ls.Signature()] {
				if s, ok := eng.JoinCombine(ls, rs); ok {
					out[s] = struct{}{}
				}
			}
		}
		return out
	}
	panic("pmdag: unknown node kind")
}

func groupBySignature(set map[match.State]struct{}) map[match.JoinSignature][]match.State {
	g := make(map[match.JoinSignature][]match.State, len(set))
	for s := range set {
		g[s.Signature()] = append(g[s.Signature()], s)
	}
	return g
}

// pathStats mirrors Stats for a single path.
type pathStats struct {
	DAGVertices, DAGEdges, ForestEdges, ShortcutEdges int64
	MaxHops                                           int
}

// processPath materializes the partial-match DAG of one decomposition-tree
// path, adds shortcuts, runs the reachability BFS, and stores the valid
// sets of every node on the path into eng.Sets.
func processPath(eng *match.Result, path []int32, cfg Config, tr *wd.Tracker) pathStats {
	nd := eng.Problem().ND
	L := len(path)
	// Universe of states per level; level 0 holds the bottom's valid set.
	valid0 := bottomStates(eng, path[0])
	uni := make([][]match.State, L)
	idx := make([]map[match.State]int32, L)
	uni[0] = make([]match.State, 0, len(valid0))
	for s := range valid0 {
		uni[0] = append(uni[0], s)
	}
	offset := make([]int32, L+1)
	idx[0] = indexStates(uni[0])
	for j := 1; j < L; j++ {
		uni[j] = eng.Universe(path[j])
		idx[j] = indexStates(uni[j])
	}
	for j := 0; j < L; j++ {
		offset[j+1] = offset[j] + int32(len(uni[j]))
	}
	V := int(offset[L])

	// Build edges: adjacency as edge lists per source, and the forest
	// next-pointer (unique no-new-match successor).
	adj := make([][]int32, V)
	forestNext := make([]int32, V)
	for i := range forestNext {
		forestNext[i] = -1
	}
	var edges, forestEdges int64
	addEdge := func(src, dst int32, forest bool) {
		adj[src] = append(adj[src], dst)
		edges++
		if forest {
			forestNext[src] = dst
			forestEdges++
		}
	}
	for j := 1; j < L; j++ {
		node := path[j]
		below := path[j-1]
		lookup := func(s match.State) int32 {
			li, ok := idx[j][s]
			if !ok {
				panic(fmt.Sprintf("pmdag: successor state missing from universe at node %d", node))
			}
			return offset[j] + li
		}
		switch nd.Kind[node] {
		case treedecomp.Introduce, treedecomp.Forget:
			for li, s := range uni[j-1] {
				src := offset[j-1] + int32(li)
				if nd.Kind[node] == treedecomp.Introduce {
					eng.IntroduceSuccessors(node, s, func(t match.State, newMatch bool) {
						addEdge(src, lookup(t), !newMatch)
					})
				} else if t, ok := eng.ForgetSuccessor(node, s); ok {
					addEdge(src, lookup(t), true)
				}
			}
		case treedecomp.Join:
			// The off-path child is the sibling of path[j-1].
			off := nd.Left[node]
			if off == below {
				off = nd.Right[node]
			}
			group := groupBySignature(eng.Sets[off])
			for li, s := range uni[j-1] {
				src := offset[j-1] + int32(li)
				for _, os := range group[s.Signature()] {
					if t, ok := eng.JoinCombine(s, os); ok {
						addEdge(src, lookup(t), os.C == 0)
					}
				}
			}
		default:
			panic("pmdag: interior path node cannot be a leaf")
		}
	}

	// Shortcut construction (Section 3.3.3) over the forest F.
	shortcuts := buildShortcuts(forestNext, adj, cfg.ShortcutSpacing)

	// Sources: bottom valid states plus every C = ∅ state anywhere.
	sources := make([]int32, 0, len(uni[0]))
	for li := range uni[0] {
		sources = append(sources, offset[0]+int32(li))
	}
	for j := 1; j < L; j++ {
		for li, s := range uni[j] {
			if s.C == 0 {
				sources = append(sources, offset[j]+int32(li))
			}
		}
	}

	// Parallel BFS over the shortcut graph.
	reached := make([]atomic.Bool, V)
	frontier := make([]int32, 0, len(sources))
	for _, s := range sources {
		if reached[s].CompareAndSwap(false, true) {
			frontier = append(frontier, s)
		}
	}
	hops := 0
	for len(frontier) > 0 {
		hops++
		var next []int32
		if len(frontier) > 256 {
			nexts := make([][]int32, len(frontier))
			par.For(0, len(frontier), func(i int) {
				v := frontier[i]
				var local []int32
				for _, w := range adj[v] {
					if reached[w].CompareAndSwap(false, true) {
						local = append(local, w)
					}
				}
				nexts[i] = local
			})
			for _, l := range nexts {
				next = append(next, l...)
			}
		} else {
			for _, v := range frontier {
				for _, w := range adj[v] {
					if reached[w].CompareAndSwap(false, true) {
						next = append(next, w)
					}
				}
			}
		}
		frontier = next
		tr.AddPhaseRounds("pmdag-bfs", 1)
	}
	tr.AddPhaseWork("pmdag", edges+int64(V))

	// Store valid sets for every node of the path.
	for j := 0; j < L; j++ {
		set := make(map[match.State]struct{})
		for li, s := range uni[j] {
			if reached[offset[j]+int32(li)].Load() {
				set[s] = struct{}{}
			}
		}
		eng.Sets[path[j]] = set
	}
	return pathStats{
		DAGVertices:   int64(V),
		DAGEdges:      edges,
		ForestEdges:   forestEdges,
		ShortcutEdges: shortcuts,
		MaxHops:       hops,
	}
}

func indexStates(states []match.State) map[match.State]int32 {
	m := make(map[match.State]int32, len(states))
	for i, s := range states {
		m[s] = int32(i)
	}
	return m
}

// buildShortcuts decomposes the no-new-match forest into layered paths
// (Lemma 3.2 again), places hubs every ~log₂(V) positions with shortcut
// edges of exponentially increasing hub distance, and adds an escape edge
// from every vertex to the forest-parent of its path's top (the paper's
// "shortcut from every vertex to the first vertex in a lower layer").
// Shortcut edges are appended to adj; the count is returned. The added
// edge count is O(V): V/log V hubs with log V shortcuts each, plus one
// escape edge per vertex.
func buildShortcuts(forestNext []int32, adj [][]int32, spacing int) int64 {
	V := len(forestNext)
	if V == 0 {
		return 0
	}
	layers := treepath.LayersSequential(forestNext)
	fpd := treepath.Decompose(forestNext, layers)
	if spacing <= 0 {
		spacing = int(math.Ceil(math.Log2(float64(V + 1))))
	}
	if spacing < 1 {
		spacing = 1
	}
	var count int64
	for _, fp := range fpd.Paths {
		l := len(fp)
		// Hub-to-hub exponential shortcuts.
		numHubs := (l + spacing - 1) / spacing
		for h := 0; h < numHubs; h++ {
			src := fp[h*spacing]
			for step := 1; h+step < numHubs; step *= 2 {
				dst := fp[(h+step)*spacing]
				adj[src] = append(adj[src], dst)
				count++
			}
		}
		// Escape edges: jump past the rest of this path in one hop.
		top := fp[l-1]
		esc := forestNext[top]
		if esc >= 0 {
			for _, v := range fp {
				if v != top { // top already has the forest edge itself
					adj[v] = append(adj[v], esc)
					count++
				}
			}
		}
	}
	return count
}
