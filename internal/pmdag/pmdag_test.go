package pmdag

import (
	"math"
	"math/rand/v2"
	"testing"

	"planarsi/internal/graph"
	"planarsi/internal/match"
	"planarsi/internal/treedecomp"
	"planarsi/internal/wd"
)

func problemFor(g, h *graph.Graph) *match.Problem {
	nd := treedecomp.MakeNice(treedecomp.Build(g, treedecomp.MinDegree))
	return &match.Problem{G: g, H: h, ND: nd}
}

func randomPattern(k int, extra int, rng *rand.Rand) *graph.Graph {
	b := graph.NewBuilder(k)
	for v := 1; v < k; v++ {
		b.AddEdge(int32(v), int32(rng.IntN(v)))
	}
	for e := 0; e < extra; e++ {
		u := rng.Int32N(int32(k))
		v := rng.Int32N(int32(k))
		if u != v && !b.HasEdge(u, v) {
			b.AddEdge(u, v)
		}
	}
	return b.Build()
}

// The defining property: the path-DAG engine computes exactly the same
// valid state sets as the sequential engine, at every single node.
func TestAgreesWithSequentialEngine(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 60; trial++ {
		n := 6 + rng.IntN(25)
		g := graph.RandomPlanar(n, rng.Float64(), rng)
		k := 2 + rng.IntN(3)
		h := randomPattern(k, rng.IntN(2), rng)
		p := problemFor(g, h)
		seq := match.Run(p, nil)
		parr, _ := Run(p, nil)
		if seq.Found() != parr.Found() {
			t.Fatalf("trial %d: decision differs: seq=%v dag=%v", trial, seq.Found(), parr.Found())
		}
		for i := range seq.Sets {
			if seq.Sets[i].Len() != parr.Sets[i].Len() {
				t.Fatalf("trial %d: node %d: %d vs %d states", trial, i, seq.Sets[i].Len(), parr.Sets[i].Len())
			}
			for _, s := range seq.Sets[i].States() {
				if !parr.Sets[i].Contains(s) {
					t.Fatalf("trial %d: node %d: state missing in DAG engine", trial, i)
				}
			}
		}
	}
}

// Long chains are the reason the engine exists: a path target graph gives
// a path-shaped decomposition tree. The valid sets must still agree and
// the BFS must finish in O(k log V) hops, not Θ(path length).
func TestLongChainHopsBound(t *testing.T) {
	for _, n := range []int{64, 256, 1024} {
		g := graph.Path(n)
		h := graph.Path(4)
		p := problemFor(g, h)
		seq := match.Run(p, nil)
		parr, stats := Run(p, nil)
		if seq.Found() != parr.Found() || !parr.Found() {
			t.Fatalf("n=%d: decisions differ or pattern missing", n)
		}
		if stats.LongestPath < n/4 {
			t.Fatalf("n=%d: expected a long decomposition path, got %d", n, stats.LongestPath)
		}
		k := float64(h.N())
		logV := math.Log2(float64(stats.DAGVertices + 2))
		bound := int(8 * (k + 1) * logV)
		if stats.MaxHops > bound {
			t.Fatalf("n=%d: BFS took %d hops, Lemma 3.3 bound ~%d (V=%d)", n, stats.MaxHops, bound, stats.DAGVertices)
		}
		// And the hop count must beat the trivial chain length once the
		// chain is long.
		if n >= 1024 && stats.MaxHops >= stats.LongestPath {
			t.Fatalf("n=%d: shortcuts gave no improvement: hops=%d path=%d", n, stats.MaxHops, stats.LongestPath)
		}
	}
}

func TestCycleTargets(t *testing.T) {
	for _, n := range []int{16, 100} {
		g := graph.Cycle(n)
		for _, h := range []*graph.Graph{graph.Path(3), graph.Cycle(n), graph.Cycle(3)} {
			if h.N() > match.MaxK {
				continue
			}
			p := problemFor(g, h)
			seq := match.Run(p, nil)
			parr, _ := Run(p, nil)
			if seq.Found() != parr.Found() {
				t.Fatalf("n=%d k=%d: decisions differ", n, h.N())
			}
		}
	}
}

func TestStatsPopulated(t *testing.T) {
	g := graph.Grid(6, 6)
	h := graph.Cycle(4)
	tr := wd.NewTracker()
	_, stats := Run(problemFor(g, h), tr)
	if stats.DAGVertices == 0 || stats.DAGEdges == 0 {
		t.Fatal("DAG should not be empty")
	}
	if stats.ForestEdges == 0 {
		t.Fatal("forest edges expected")
	}
	if stats.Paths == 0 || stats.Layers == 0 {
		t.Fatal("path decomposition stats missing")
	}
	if tr.PhaseRounds("pmdag-bfs") == 0 {
		t.Fatal("BFS rounds not tracked")
	}
}

func TestForestEdgesAreFunctional(t *testing.T) {
	// Forest edges = no-new-match transitions; per Figure 5 each state has
	// at most one, which Stats implies: ForestEdges <= DAGVertices.
	rng := rand.New(rand.NewPCG(3, 4))
	for trial := 0; trial < 10; trial++ {
		g := graph.RandomPlanar(30+rng.IntN(40), rng.Float64(), rng)
		h := randomPattern(3, 1, rng)
		_, stats := Run(problemFor(g, h), nil)
		if stats.ForestEdges > stats.DAGVertices {
			t.Fatalf("trial %d: %d forest edges exceed %d vertices", trial, stats.ForestEdges, stats.DAGVertices)
		}
	}
}

func TestSeparatingModePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for separating mode")
		}
	}()
	g := graph.Cycle(5)
	p := problemFor(g, graph.Path(2))
	p.Separating = true
	p.S = make([]bool, g.N())
	Run(p, nil)
}

// The dense-spacing ablation variant must compute exactly the same valid
// sets as the default configuration (only the shortcut count differs).
func TestRunConfigDenseAgrees(t *testing.T) {
	g := graph.Path(300)
	h := graph.Path(4)
	p := problemFor(g, h)
	def, defStats := RunConfig(p, Config{}, nil)
	dense, denseStats := RunConfig(p, Config{ShortcutSpacing: 1}, nil)
	if def.Found() != dense.Found() {
		t.Fatal("configurations disagree on the decision")
	}
	for i := range def.Sets {
		if def.Sets[i].Len() != dense.Sets[i].Len() {
			t.Fatalf("node %d: %d vs %d states", i, def.Sets[i].Len(), dense.Sets[i].Len())
		}
	}
	if denseStats.ShortcutEdges <= defStats.ShortcutEdges {
		t.Fatalf("dense spacing should add more shortcut edges: %d vs %d",
			denseStats.ShortcutEdges, defStats.ShortcutEdges)
	}
}
