package pmdag

import (
	"math/rand/v2"
	"slices"
	"testing"

	"planarsi/internal/graph"
	"planarsi/internal/match"
	"planarsi/internal/treedecomp"
)

// mapReferenceRun is the pre-StateSet bottom-up DP kept as an oracle: the
// same transition methods, map-backed sets. The path-DAG engine on the
// flat substrate must reproduce its per-node sets exactly (plain mode —
// the engine's scope).
func mapReferenceRun(p *match.Problem) []map[match.State]struct{} {
	r := match.NewEngine(p)
	nd := p.ND
	sets := make([]map[match.State]struct{}, nd.NumNodes())
	for _, i := range nd.Order {
		set := make(map[match.State]struct{})
		switch nd.Kind[i] {
		case treedecomp.Leaf:
			set[match.EmptyState()] = struct{}{}
		case treedecomp.Introduce:
			for cs := range sets[nd.Left[i]] {
				r.IntroduceSuccessors(i, cs, func(s match.State, _ bool) {
					set[s] = struct{}{}
				})
			}
		case treedecomp.Forget:
			for cs := range sets[nd.Left[i]] {
				if s, ok := r.ForgetSuccessor(i, cs); ok {
					set[s] = struct{}{}
				}
			}
		case treedecomp.Join:
			group := make(map[match.JoinSignature][]match.State)
			for rs := range sets[nd.Right[i]] {
				group[rs.Signature()] = append(group[rs.Signature()], rs)
			}
			for ls := range sets[nd.Left[i]] {
				for _, rs := range group[ls.Signature()] {
					if s, ok := r.JoinCombine(ls, rs); ok {
						set[s] = struct{}{}
					}
				}
			}
		}
		sets[i] = set
	}
	return sets
}

func cmpState(a, b match.State) int {
	for u := range a.Phi {
		if a.Phi[u] != b.Phi[u] {
			return int(a.Phi[u]) - int(b.Phi[u])
		}
	}
	switch {
	case a.C != b.C:
		return int(a.C) - int(b.C)
	case a.In != b.In:
		if a.In < b.In {
			return -1
		}
		return 1
	case a.Out != b.Out:
		if a.Out < b.Out {
			return -1
		}
		return 1
	}
	return 0 // IX/OX stay false in plain mode
}

func canon(states []match.State) []match.State {
	out := slices.Clone(states)
	slices.SortFunc(out, cmpState)
	return out
}

func canonMap(set map[match.State]struct{}) []match.State {
	out := make([]match.State, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	slices.SortFunc(out, cmpState)
	return out
}

// TestPathDAGEquivalentToMapReference locks the flat substrate end to
// end: on seeded random planar targets and patterns, the path-DAG engine
// must produce byte-identical per-node state sets to the map-based
// reference DP, and the DecideOnly variant the identical root set.
func TestPathDAGEquivalentToMapReference(t *testing.T) {
	rng := rand.New(rand.NewPCG(77, 2025))
	for trial := 0; trial < 80; trial++ {
		n := 6 + rng.IntN(25)
		g := graph.RandomPlanar(n, rng.Float64(), rng)
		h := randomPattern(2+rng.IntN(3), rng.IntN(2), rng)
		p := problemFor(g, h)
		want := mapReferenceRun(p)
		eng, _ := Run(p, nil)
		for i := range want {
			ws := canonMap(want[i])
			gs := canon(eng.Sets[i].States())
			if !slices.Equal(ws, gs) {
				t.Fatalf("trial %d: node %d: %d reference states vs %d DAG states",
					trial, i, len(ws), len(gs))
			}
		}
		pd := *p
		pd.DecideOnly = true
		deng, _ := Run(&pd, nil)
		root := p.ND.Root
		if !slices.Equal(canonMap(want[root]), canon(deng.Sets[root].States())) {
			t.Fatalf("trial %d: DecideOnly root set differs from reference", trial)
		}
		if deng.Found() != eng.Found() {
			t.Fatalf("trial %d: DecideOnly decision differs", trial)
		}
	}
}

// DecideOnly must retain only root-reaching sets: every non-root node's
// entry is recycled once consumed.
func TestDecideOnlyRetainsOnlyRoot(t *testing.T) {
	g := graph.Grid(5, 5)
	h := graph.Cycle(4)
	p := problemFor(g, h)
	p.DecideOnly = true
	eng, _ := Run(p, nil)
	for i := range eng.Sets {
		if int32(i) != p.ND.Root && eng.Sets[i] != nil {
			t.Fatalf("node %d kept its set in DecideOnly mode", i)
		}
	}
	if !eng.Found() {
		t.Fatal("C4 must occur in the 5x5 grid")
	}
}
