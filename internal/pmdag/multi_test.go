package pmdag

import (
	"math/rand/v2"
	"slices"
	"testing"

	"planarsi/internal/graph"
	"planarsi/internal/match"
	"planarsi/internal/obs"
	"planarsi/internal/par"
	"planarsi/internal/treedecomp"
)

// TestRunMultiMatchesSoloRuns: the multi-pattern path-DAG sweep must
// give every pattern the same per-node state sets, decision, emission
// count and cost totals as a solo Run over the same decomposition.
func TestRunMultiMatchesSoloRuns(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 2026))
	for trial := 0; trial < 25; trial++ {
		n := 8 + rng.IntN(22)
		g := graph.RandomPlanar(n, rng.Float64(), rng)
		nd := treedecomp.MakeNice(treedecomp.Build(g, treedecomp.MinDegree))
		np := 2 + rng.IntN(3)
		multiPs := make([]*match.Problem, np)
		multiCost := make([]*obs.CostCounter, np)
		soloCost := make([]*obs.CostCounter, np)
		hs := make([]*graph.Graph, np)
		for x := 0; x < np; x++ {
			hs[x] = randomPattern(2+rng.IntN(3), rng.IntN(2), rng)
			multiCost[x] = &obs.CostCounter{}
			soloCost[x] = &obs.CostCounter{}
			decideOnly := x%2 == 1
			multiPs[x] = &match.Problem{G: g, H: hs[x], ND: nd, DecideOnly: decideOnly, Cost: multiCost[x]}
		}
		multi := RunMulti(multiPs, nil)
		for x := 0; x < np; x++ {
			solo, _ := Run(&match.Problem{
				G: g, H: hs[x], ND: nd, DecideOnly: multiPs[x].DecideOnly, Cost: soloCost[x],
			}, nil)
			for i := range solo.Sets {
				m, s := multi[x].Sets[i], solo.Sets[i]
				if (m == nil) != (s == nil) {
					t.Fatalf("trial %d pattern %d: node %d nil mismatch", trial, x, i)
				}
				if m == nil {
					continue
				}
				if !slices.Equal(canon(m.States()), canon(s.States())) {
					t.Fatalf("trial %d pattern %d: node %d sets differ", trial, x, i)
				}
			}
			if multi[x].Found() != solo.Found() {
				t.Fatalf("trial %d pattern %d: decisions differ", trial, x)
			}
			if multi[x].StatesGenerated() != solo.StatesGenerated() {
				t.Fatalf("trial %d pattern %d: StatesGenerated %d vs %d",
					trial, x, multi[x].StatesGenerated(), solo.StatesGenerated())
			}
			if mc, sc := multiCost[x].Snapshot(), soloCost[x].Snapshot(); mc != sc {
				t.Fatalf("trial %d pattern %d: cost %+v vs %+v", trial, x, mc, sc)
			}
		}
	}
}

// TestRunMultiPerPatternCancellation: one pattern's pre-fired token
// abandons only that pattern; its batch-mates decide exactly as solo
// runs.
func TestRunMultiPerPatternCancellation(t *testing.T) {
	g := graph.Grid(6, 6)
	nd := treedecomp.MakeNice(treedecomp.Build(g, treedecomp.MinDegree))
	cancelled := par.NewCanceller()
	cancelled.Cancel()
	ps := []*match.Problem{
		{G: g, H: graph.Cycle(4), ND: nd},
		{G: g, H: graph.Cycle(6), ND: nd, Cancel: cancelled},
		{G: g, H: graph.Path(5), ND: nd},
	}
	rs := RunMulti(ps, nil)
	if !rs[0].Found() || !rs[2].Found() {
		t.Fatal("surviving patterns must find their grid motifs")
	}
	if rs[1].Found() {
		t.Fatal("cancelled pattern reported found from a partial run")
	}
}
