package pmdag

import (
	"math/rand/v2"
	"testing"
	"time"

	"planarsi/internal/graph"
	"planarsi/internal/match"
	"planarsi/internal/par"
	"planarsi/internal/treedecomp"
)

func cancelTestProblem(t *testing.T, seed uint64) *match.Problem {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, seed^0xabcdef))
	g := graph.RandomPlanar(300, 0.7, rng)
	td := treedecomp.Build(g, treedecomp.MinDegree)
	nd := treedecomp.MakeNice(td)
	if nd.Width+1 > match.MaxBag {
		t.Skip("decomposition too wide for the engine on this seed")
	}
	return &match.Problem{G: g, H: graph.Cycle(4), ND: nd}
}

// TestEmissionParityAcrossParEngines: with no cancellation, the
// state-emission counter (the Lemma 3.1 work measure) is deterministic
// — identical across the pool and semaphore par engines, and identical
// with an unfired token attached.
func TestEmissionParityAcrossParEngines(t *testing.T) {
	p := cancelTestProblem(t, 31)

	par.SetEngine(par.EnginePool)
	engPool, _ := Run(p, nil)

	par.SetEngine(par.EngineSemaphore)
	engSem, _ := Run(p, nil)
	par.SetEngine(par.EnginePool)

	pt := *p
	pt.Cancel = par.NewCanceller() // never fired
	engTok, _ := Run(&pt, nil)

	if a, b := engPool.StatesGenerated(), engSem.StatesGenerated(); a != b {
		t.Fatalf("emission parity broken across par engines: pool=%d semaphore=%d", a, b)
	}
	if a, b := engPool.StatesGenerated(), engTok.StatesGenerated(); a != b {
		t.Fatalf("unfired token changed emissions: %d vs %d", a, b)
	}
	if engPool.Found() != engSem.Found() || engPool.Found() != engTok.Found() {
		t.Fatal("engines disagree on Found")
	}
}

// TestCancelledRunRerunIdentical: abandoning a pmdag run mid-flight and
// rerunning the same problem fresh must reproduce the reference
// per-node sets exactly (the arena and shared transition caches carry
// no state across runs).
func TestCancelledRunRerunIdentical(t *testing.T) {
	p := cancelTestProblem(t, 37)
	ref, _ := Run(p, nil)

	for _, delay := range []time.Duration{0, 100 * time.Microsecond, time.Millisecond} {
		c := par.NewCanceller()
		go func(d time.Duration) {
			time.Sleep(d)
			c.Cancel()
		}(delay)
		pc := *p
		pc.Cancel = c
		Run(&pc, nil) // result intentionally discarded: the token may have fired mid-run

		again, _ := Run(p, nil)
		if again.StatesGenerated() != ref.StatesGenerated() {
			t.Fatalf("delay %v: rerun emissions %d, want %d", delay, again.StatesGenerated(), ref.StatesGenerated())
		}
		for i := range ref.Sets {
			if ref.Sets[i].Len() != again.Sets[i].Len() {
				t.Fatalf("delay %v: node %d set size %d, want %d", delay, i, again.Sets[i].Len(), ref.Sets[i].Len())
			}
			for _, s := range ref.Sets[i].States() {
				if !again.Sets[i].Contains(s) {
					t.Fatalf("delay %v: node %d missing state after rerun", delay, i)
				}
			}
		}
	}
}
