// Reliability: auditing the fault tolerance of a planar backbone
// network, the networking / operations-research application from the
// paper's introduction (Censor-Hillel et al. [12]; Nagamochi et al.
// [41]).
//
// A metro fiber backbone is laid out planarly (ducts do not cross). Its
// vertex connectivity is the number of simultaneous node failures the
// network provably survives, and the witness cut is the weakest point —
// the set of sites whose loss splits the network.
//
// Run with: go run ./examples/reliability
package main

import (
	"fmt"
	"log"
	"math"

	"planarsi"
)

// ringCoords returns planar coordinates for two concentric rings of
// `ring` sites each: the connectivity algorithm needs an embedding, and a
// straight-line drawing provides one.
func ringCoords(ring int) (x, y []float64) {
	x = make([]float64, 2*ring)
	y = make([]float64, 2*ring)
	for i := 0; i < ring; i++ {
		a := 2 * math.Pi * float64(i) / float64(ring)
		x[i], y[i] = 2*math.Cos(a), 2*math.Sin(a)       // outer
		x[ring+i], y[ring+i] = math.Cos(a), math.Sin(a) // inner
	}
	return x, y
}

// backbone builds a ring-and-spoke metro network: two concentric rings of
// pops (points of presence) with radial links, plus a few cross-town
// express links on one side, leaving the other side a 2-cut.
func backbone() *planarsi.Graph {
	const ring = 12
	b := planarsi.NewBuilder(2 * ring)
	outer := func(i int) int32 { return int32(i % ring) }
	inner := func(i int) int32 { return int32(ring + i%ring) }
	for i := 0; i < ring; i++ {
		b.AddEdge(outer(i), outer(i+1)) // outer ring
		b.AddEdge(inner(i), inner(i+1)) // inner ring
		if i%2 == 0 {
			b.AddEdge(outer(i), inner(i)) // radial every other pop
		}
	}
	// Express links strengthen the east side only.
	b.AddEdge(outer(1), inner(1))
	b.AddEdge(outer(3), inner(3))
	x, y := ringCoords(ring)
	return b.BuildEmbedded(x, y)
}

func main() {
	g := backbone()
	fmt.Printf("backbone: %d sites, %d links\n", g.N(), g.M())

	res, err := planarsi.VertexConnectivity(g, planarsi.Options{Seed: 23})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("survives any %d simultaneous site failures\n", res.Connectivity-1)
	fmt.Printf("weakest point: sites %v", res.Cut)
	if res.Cut != nil && planarsi.VerifyCut(g, res.Cut) {
		fmt.Printf(" (verified: their loss splits the network)\n")
	} else {
		fmt.Println()
	}

	// Capacity planning: how much does one extra radial link help?
	// Rebuild with full radials and re-audit.
	const ring = 12
	b := planarsi.NewBuilder(2 * ring)
	for i := 0; i < ring; i++ {
		b.AddEdge(int32(i%ring), int32((i+1)%ring))
		b.AddEdge(int32(ring+i%ring), int32(ring+(i+1)%ring))
		b.AddEdge(int32(i), int32(ring+i)) // radial at every pop
	}
	ux, uy := ringCoords(ring)
	upgraded := b.BuildEmbedded(ux, uy)
	res2, err := planarsi.VertexConnectivity(upgraded, planarsi.Options{Seed: 23})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with full radials: survives %d failures (connectivity %d)\n",
		res2.Connectivity-1, res2.Connectivity)

	// Which sites sit on *some* minimal separating ring? The separating
	// search answers directly: does a 4-site ring exist that splits the
	// remaining pops?
	s := make([]bool, upgraded.N())
	for i := range s {
		s[i] = true
	}
	ringPattern := planarsi.Cycle(2 * res2.Connectivity)
	// Search on the vertex-face structure is what VertexConnectivity does
	// internally; at the application level we ask for a separating ring of
	// sites in the backbone itself.
	occ, err := planarsi.DecideSeparating(upgraded, ringPattern, s, planarsi.Options{Seed: 29})
	if err != nil {
		log.Fatal(err)
	}
	if occ != nil {
		fmt.Printf("a %d-site ring that isolates part of the network: %v\n", len(occ), occ)
	} else {
		fmt.Printf("no %d-site separating ring found\n", 2*res2.Connectivity)
	}
}
