// Quickstart: decide, find, list, and vertex connectivity in a dozen
// lines each. Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"planarsi"
)

func main() {
	// A 16x16 grid as the planar target and a 4-cycle as the pattern.
	g := planarsi.Grid(16, 16)
	h := planarsi.Cycle(4)
	opt := planarsi.Options{Seed: 1}

	found, err := planarsi.Decide(g, h, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("C4 occurs in the 16x16 grid: %v\n", found)

	occ, err := planarsi.FindOccurrence(g, h, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("witness: %v (verifies: %v)\n", occ, planarsi.VerifyOccurrence(g, h, occ))

	count, err := planarsi.CountOccurrences(g, h, opt)
	if err != nil {
		log.Fatal(err)
	}
	// 15*15 unit squares, 8 automorphic maps each.
	fmt.Printf("C4 occurrences: %d (expected %d)\n", count, 15*15*8)

	res, err := planarsi.VertexConnectivity(g, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("grid vertex connectivity: %d, cut witness: %v\n", res.Connectivity, res.Cut)

	// Instrumentation: the paper's work/depth quantities, measured.
	tr := planarsi.NewTracker()
	opt.Tracker = tr
	if _, err := planarsi.Decide(g, h, opt); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("instrumented decide: %v\n", tr)
}
