// Serving example: the planarsid serving layer driven in-process.
//
// It builds a serve.Server, registers a host graph, and fires a
// concurrent burst of decide/count queries over real HTTP — then prints
// the scheduler's coalescing stats, showing that the burst was served by
// far fewer batched scans than there were requests, each answer still
// identical to the direct API's.
//
//	go run ./examples/serving
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"sync"
	"time"

	"planarsi"
	"planarsi/internal/core"
	"planarsi/internal/graph"
	"planarsi/internal/serve"
)

func main() {
	opt := core.Options{Seed: 1, MaxRuns: 8}
	srv := serve.New(serve.Options{
		Pipeline:  opt,
		MaxBytes:  256 << 20,
		Scheduler: serve.SchedulerOptions{Window: 5 * time.Millisecond},
	})
	host := graph.Grid(16, 16)
	if _, err := srv.Registry().Register("grid", host, true); err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	patterns := map[string]*graph.Graph{
		"C3": graph.Cycle(3),
		"C4": graph.Cycle(4),
		"C6": graph.Cycle(6),
		"P5": graph.Path(5),
	}

	// 16 concurrent clients, 4 queries each: everything that lands in
	// one 5ms window against the same host shares a single batched scan.
	var wg sync.WaitGroup
	var mu sync.Mutex
	found := map[string]bool{}
	for c := 0; c < 16; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for name, h := range patterns {
				body, _ := json.Marshal(map[string]any{
					"graph":   "grid",
					"pattern": serve.WireGraph(h),
				})
				resp, err := http.Post(ts.URL+"/decide", "application/json", bytes.NewReader(body))
				if err != nil {
					log.Fatal(err)
				}
				var out serve.QueryResponse
				raw, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err := json.Unmarshal(raw, &out); err != nil {
					log.Fatalf("%s: %s", err, raw)
				}
				mu.Lock()
				found[name] = out.Found
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	for _, name := range []string{"C3", "C4", "C6", "P5"} {
		direct, err := planarsi.Decide(host, patterns[name], planarsi.Options{Seed: 1, MaxRuns: 8})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s in 16x16 grid: served=%v direct=%v\n", name, found[name], direct)
	}
	st := srv.Stats()
	fmt.Printf("requests=%d batches=%d (%.1f queries per batched scan)\n",
		st.Scheduler.Requests, st.Scheduler.Batches,
		float64(st.Scheduler.Requests)/float64(max(st.Scheduler.Batches, 1)))
	fmt.Printf("index cache: %d covers, %d KiB\n",
		st.Registry.Graphs[0].Index.PlainCovers, st.Registry.Graphs[0].Index.MemBytes>>10)
}
