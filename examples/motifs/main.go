// Motifs: counting small network motifs in a planar interaction network,
// the biological-networks application from the paper's introduction
// (Milo et al., "Network motifs" [40]; Przulj et al. on geometric
// interactomes [46]).
//
// Geometric random graphs — proteins interacting when spatially close —
// are a standard interactome model and are near-planar; here we use a
// planar proximity triangulation directly. Motif frequencies (triangles,
// squares, stars, short paths) fingerprint the network class.
//
// Run with: go run ./examples/motifs
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand/v2"

	"planarsi"
)

func main() {
	rng := rand.New(rand.NewPCG(11, 13))
	// A planar proximity network: a random triangulation thinned to
	// interaction strength 0.55 — vertices are proteins, edges are
	// interactions. (Counting enumerates every occurrence, so the demo
	// stays at a size where motif counts are in the tens of thousands.)
	g := planarsi.RandomPlanar(150, 0.55, rng)
	fmt.Printf("interactome: %d proteins, %d interactions\n", g.N(), g.M())

	// A motif census asks many patterns about one network — exactly the
	// shape the Index serves: the interactome is clustered, covered and
	// decomposed once, and every query below reuses those artifacts.
	opt := planarsi.Options{Seed: 17}
	ix := planarsi.NewIndex(g, opt)
	motifs := []struct {
		name string
		h    *planarsi.Graph
		auto int // automorphisms, to convert maps to subgraph counts
	}{
		{"triangle (C3)", planarsi.Cycle(3), 6},
		{"square (C4)", planarsi.Cycle(4), 8},
		{"path (P3)", planarsi.Path(3), 2},
		{"path (P4)", planarsi.Path(4), 2},
	}
	batch := make([]*planarsi.Graph, len(motifs))
	for i, m := range motifs {
		batch[i] = m.h
	}
	fmt.Println("motif            maps    subgraphs")
	for i, res := range ix.ScanCount(context.Background(), batch) {
		if res.Err != nil {
			log.Fatal(res.Err)
		}
		fmt.Printf("%-15s  %6d  %9d\n", motifs[i].name, res.Count, res.Count/motifs[i].auto)
	}

	// Heavier motifs are cheap to *detect* even when counting all of
	// their maps would be expensive (counting pays for every occurrence;
	// the paper's conclusion discusses exactly this gap).
	claw := planarsi.Star(4)
	present, err := ix.Decide(claw)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("claw (K1,3) present: %v\n", present)

	// Motif significance needs a null model: compare against a degree-
	// similar random planar network. Real analyses use many samples; one
	// suffices to show the workflow — and gets its own Index, since an
	// Index is bound to one target.
	null := planarsi.RandomPlanar(150, 0.55, rand.New(rand.NewPCG(99, 101)))
	tri := planarsi.Cycle(3)
	obs, err := ix.CountOccurrences(tri)
	if err != nil {
		log.Fatal(err)
	}
	exp, err := planarsi.NewIndex(null, opt).CountOccurrences(tri)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("triangle motif: observed %d vs null-model %d maps\n", obs, exp)

	// Disconnected motifs work too (Lemma 4.1): two independent
	// interaction pairs.
	pair := planarsi.DisjointUnion(planarsi.Path(2), planarsi.Path(2))
	found, err := ix.Decide(pair)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("two disjoint interactions present: %v\n", found)
}
