// Circuits: locating subcircuits inside a planar netlist, the electronic
// design application from the paper's introduction (Ohlrich et al.,
// "SubGemini", DAC 1993 [44]).
//
// Circuits are laid out without wire crossings, so their connection
// graphs are planar. We build a VLSI-like netlist — a grid of standard
// cells with local routing — and search for functional unit shapes:
// a half-adder-like diamond, a buffer chain, and a fanout tree.
//
// Run with: go run ./examples/circuits
package main

import (
	"fmt"
	"log"

	"planarsi"
)

// netlist builds a planar "standard cell row" layout: rows of cells, each
// connected to its row neighbors, with periodic vertical straps and local
// diamond structures where a driver fans out to two sinks that reconverge.
func netlist(rows, cols int) *planarsi.Graph {
	n := rows * cols
	b := planarsi.NewBuilder(n)
	id := func(r, c int) int32 { return int32(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.AddEdge(id(r, c), id(r, c+1)) // row routing
			}
			// Vertical straps every 4th column.
			if r+1 < rows && c%4 == 0 {
				b.AddEdge(id(r, c), id(r+1, c))
			}
			// Reconvergent fanout (diamond) every 5th cell pair.
			if r+1 < rows && c%5 == 1 && c+2 < cols {
				b.AddEdge(id(r, c), id(r+1, c+1))
				b.AddEdge(id(r+1, c+1), id(r, c+2))
			}
		}
	}
	return b.Build()
}

func main() {
	g := netlist(24, 40)
	fmt.Printf("netlist: %d cells, %d nets\n", g.N(), g.M())
	opt := planarsi.Options{Seed: 7}

	// Pattern 1: reconvergent fanout diamond (a 4-cycle): the shape of a
	// half-adder's carry/sum reconvergence.
	diamond := planarsi.Cycle(4)
	count, err := planarsi.CountOccurrences(g, diamond, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reconvergent diamonds (C4 maps): %d\n", count)

	// Pattern 2: a 6-stage buffer chain (path P6).
	chain := planarsi.Path(6)
	occ, err := planarsi.FindOccurrence(g, chain, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("buffer chain found: %v -> cells %v\n", occ != nil, occ)

	// Pattern 3: a fanout tree — one driver feeding four sinks (star).
	// The netlist's maximum degree is 5 at strap/diamond junctions.
	fanout := planarsi.Star(5)
	found, err := planarsi.Decide(g, fanout, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("4-sink fanout present: %v\n", found)

	// Pattern 4: a 5-cycle — absent in this topology (all cycles built
	// from row/strap/diamond routing have even length... except diamonds
	// plus row segments; check what the tool says).
	c5 := planarsi.Cycle(5)
	found, err = planarsi.Decide(g, c5, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("odd 5-cycles present: %v\n", found)

	// SubGemini-style use: verify a specific extracted block matches the
	// library shape before tape-out — witness + verification.
	if occ != nil && planarsi.VerifyOccurrence(g, chain, occ) {
		fmt.Println("extracted block verified against library shape")
	}
}
