# CI entry points. `make check` (or `make`, or the legacy `make ci`) is
# the tier-1 gate the build must keep green: lint (gofmt, vet,
# staticcheck — the same step CI's lint job runs), build, the full test
# suite, and the race pass over the packages with concurrent hot paths
# (the Index's memoized decompositions, the fork-join runtime, and the
# match/pmdag state-set arena shared by parallel path workers). The race
# pass uses -short: it targets thread-safety, not the statistical sweeps,
# which the plain test run already covers.

GO ?= go

.PHONY: check ci lint vet build test race coverage bench bench-index bench-serve bench-engines benchstat bench-smoke bench-load serve-smoke chaos-smoke mutation-smoke fuzz-gio fuzz-snap fuzz-edits

check: lint build test race

ci: check

# lint is the exact command CI's lint job runs, so a green local `make
# check` and a green CI gate mean the same thing. staticcheck is skipped
# with a note when not installed (the CI job installs it; the container
# build must not pull dependencies).
lint: vet
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt -l found unformatted files:"; echo "$$out"; exit 1; fi
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
		else echo "lint: staticcheck not installed; skipping (CI installs it)"; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./internal/index ./internal/core ./internal/par ./internal/match ./internal/pmdag ./internal/serve ./internal/obs

# Full-suite coverage profile with a ratcheted floor (see the script for
# the ratchet policy). CI uploads coverage.out as an artifact.
coverage:
	./scripts/coverage-check.sh coverage.out

bench:
	$(GO) test -bench=. -benchmem -run '^$$' .

# The headline Index comparison: batched Scan vs independent Decide calls.
bench-index:
	$(GO) test -bench=BenchmarkIndexScan -run '^$$' -benchtime 10x .

# The serving-layer load comparison: coalesced micro-batched serving vs
# per-request Index construction on warm repeated patterns.
bench-serve:
	$(GO) test -bench=BenchmarkServeLoad -run '^$$' -benchtime 200x .

# The execution-substrate ablation: work-stealing pool vs semaphore
# engine on synthetic balanced/skewed band loads (CPU- and latency-
# bound), plus the decide-hit/decide-miss cancellation matrix on a grid
# target. GOMAXPROCS=4 exercises the parallel paths even on small CI
# boxes; BENCH_4.json records a snapshot with interpretation notes.
bench-engines:
	GOMAXPROCS=4 $(GO) test -bench 'EngineAblation|DecideCancellation' -run '^$$' -benchtime 3x ./internal/par ./internal/core
	$(GO) test -bench EngineLatencyLoad -run '^$$' -benchtime 5x ./internal/par

# Boot the planarsid daemon, fire a scripted curl burst, check answers.
serve-smoke:
	./scripts/serve-smoke.sh

# Boot the daemon under deterministic fault injection and prove the
# resilience layer: panic -> 500 + incident id, breaker open/half-open/
# close lifecycle with Retry-After, byte-identical answers after
# recovery, snapshot write/read faults, and a probabilistic panic storm
# under planarsiload -chaos. RACE=1 builds the daemon with -race.
chaos-smoke:
	RACE=$(RACE) ./scripts/chaos-smoke.sh

# Boot the daemon, stream edit batches at a live graph under concurrent
# planarsiload traffic, and prove the incremental index honest: answers
# byte-identical to a fresh build on the mutated edge list, and band
# invalidations strictly below the full-rebuild count. RACE=1 builds the
# daemon with -race.
mutation-smoke:
	RACE=$(RACE) ./scripts/mutation-smoke.sh

# Fuzz budget per target: 30s is the quick local pass; the nightly
# workflow overrides it (make fuzz-gio FUZZTIME=10m).
FUZZTIME ?= 30s

# Fuzz the network-facing edge-list parser.
fuzz-gio:
	$(GO) test -run '^$$' -fuzz FuzzReadEdgeList -fuzztime $(FUZZTIME) ./internal/gio

# Fuzz the snapshot decoder: arbitrary bytes must error cleanly (never
# panic or over-allocate), and inputs that decode must round-trip.
fuzz-snap:
	$(GO) test -run '^$$' -fuzz FuzzDecodeSnapshot -fuzztime $(FUZZTIME) ./internal/snap

# Fuzz the live-graph edit path: random toggle batches must either apply
# (epoch +1) or reject cleanly (epoch unchanged), and the mutated index
# must answer exactly like a fresh build on the same graph.
fuzz-edits:
	$(GO) test -run '^$$' -fuzz FuzzApplyEdits -fuzztime $(FUZZTIME) ./internal/index

# benchstat-ready runs of the perf-tracked benchmarks: the Table 1
# decision pipeline (root package) and the flat state-set
# micro-benchmarks (internal/match), 5 repetitions each. Pipe two runs
# into benchstat to compare PRs; BENCH_*.json records the trajectory.
benchstat:
	$(GO) test -bench 'Table1|StateSet' -benchmem -count 5 -run '^$$' . ./internal/match

# Pinned-seed smoke benchmark: every benchmark seeds its own PCG, so a
# single iteration both exercises the perf-critical paths end to end and
# fails loudly if a result drifts (each benchmark asserts its answers).
bench-smoke:
	$(GO) test -bench 'Table1DecideOurs|StateSet|ScanMultiPattern' -benchtime 1x -benchmem -run '^$$' . ./internal/match

# Short planarsiload smoke: boot the daemon, drive both arrival modes
# for a couple of seconds, assert the latency report is sound.
# BENCH_6.json records a longer run of the same tool.
bench-load:
	./scripts/bench-load.sh
