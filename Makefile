# CI entry points. `make` (or `make ci`) runs what the build must keep
# green: vet, build, the full test suite, and the race pass over the
# packages with concurrent hot paths (the Index's memoized decompositions
# and the fork-join runtime). The race pass uses -short: it targets
# thread-safety, not the statistical sweeps, which the plain test run
# already covers.

GO ?= go

.PHONY: ci vet build test race bench bench-index

ci: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./internal/index ./internal/core ./internal/par

bench:
	$(GO) test -bench=. -benchmem -run '^$$' .

# The headline Index comparison: batched Scan vs independent Decide calls.
bench-index:
	$(GO) test -bench=BenchmarkIndexScan -run '^$$' -benchtime 10x .
