package main

// Offline consumption of planarsid's -trace-log JSONL sink: planarsiload
// -trace-summary FILE aggregates the request records into a per-endpoint
// table (volume, latency percentiles, DP cost totals) plus the slowest
// recorded spans, and exits without generating load. The record shape
// mirrors serve's traceLogRecord; unknown fields are ignored, so the two
// sides can evolve independently as long as the names below stay stable.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"planarsi/internal/obs"
)

// traceRecord is one -trace-log line (the subset this tool reads).
type traceRecord struct {
	RequestID string     `json:"requestId"`
	TraceID   string     `json:"traceId"`
	Endpoint  string     `json:"endpoint"`
	Status    int        `json:"status"`
	DurMicros float64    `json:"durMicros"`
	Cost      *obs.Cost  `json:"cost"`
	Spans     []obs.Span `json:"spans"`
	Dropped   int        `json:"dropped"`
}

// endpointAgg accumulates one endpoint's rows.
type endpointAgg struct {
	count   int
	errors  int
	traced  int
	durs    []float64 // micros
	cost    obs.Cost
	dropped int
}

// slowSpan is one candidate for the slowest-spans table.
type slowSpan struct {
	requestID string
	endpoint  string
	span      obs.Span
}

// runTraceSummary reads the JSONL file and prints the aggregate to w.
// Malformed lines are counted and skipped (a live daemon may still be
// appending; the final line can be torn).
func runTraceSummary(w io.Writer, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()

	agg := map[string]*endpointAgg{}
	var slow []slowSpan
	var total, malformed int
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 16<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec traceRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			malformed++
			continue
		}
		total++
		a := agg[rec.Endpoint]
		if a == nil {
			a = &endpointAgg{}
			agg[rec.Endpoint] = a
		}
		a.count++
		if rec.Status >= 400 {
			a.errors++
		}
		a.durs = append(a.durs, rec.DurMicros)
		a.dropped += rec.Dropped
		if rec.Cost != nil {
			a.traced++
			a.cost.Accumulate(*rec.Cost)
		} else if len(rec.Spans) > 0 {
			a.traced++
		}
		for _, sp := range rec.Spans {
			slow = append(slow, slowSpan{requestID: rec.RequestID, endpoint: rec.Endpoint, span: sp})
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}

	fmt.Fprintf(w, "trace summary: %s (%d records", path, total)
	if malformed > 0 {
		fmt.Fprintf(w, ", %d malformed lines skipped", malformed)
	}
	fmt.Fprintf(w, ")\n\n")

	names := make([]string, 0, len(agg))
	for name := range agg {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "%-14s %8s %6s %6s %10s %10s %10s\n",
		"endpoint", "count", "errors", "traced", "p50(ms)", "p95(ms)", "max(ms)")
	for _, name := range names {
		a := agg[name]
		sort.Float64s(a.durs)
		fmt.Fprintf(w, "%-14s %8d %6d %6d %10.2f %10.2f %10.2f\n",
			name, a.count, a.errors, a.traced,
			quantileMicros(a.durs, 0.50)/1e3,
			quantileMicros(a.durs, 0.95)/1e3,
			a.durs[len(a.durs)-1]/1e3)
	}
	fmt.Fprintln(w)
	for _, name := range names {
		a := agg[name]
		if a.cost.IsZero() && a.dropped == 0 {
			continue
		}
		fmt.Fprintf(w, "%s cost: nodes=%d states=%d joins=%d emissions=%d bytes=%d",
			name, a.cost.Nodes, a.cost.States, a.cost.Joins, a.cost.Emissions, a.cost.Bytes)
		if a.dropped > 0 {
			fmt.Fprintf(w, " (spans dropped: %d — timelines truncated)", a.dropped)
		}
		fmt.Fprintln(w)
	}

	if len(slow) > 0 {
		sort.Slice(slow, func(i, j int) bool { return slow[i].span.DurMicros > slow[j].span.DurMicros })
		k := min(len(slow), 10)
		fmt.Fprintf(w, "\nslowest spans:\n")
		for _, s := range slow[:k] {
			fmt.Fprintf(w, "  %8.0fµs %-8s run=%d band=%d note=%q req=%s endpoint=%s\n",
				s.span.DurMicros, s.span.Name, s.span.Run, s.span.Band, s.span.Note,
				s.requestID, s.endpoint)
		}
	}
	return nil
}

// quantileMicros reads quantile q from an already-sorted sample by
// nearest-rank (exact over the raw client-side samples, unlike the
// server's interpolated histogram quantiles).
func quantileMicros(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}
