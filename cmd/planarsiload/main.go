// Command planarsiload is the open/closed-loop load generator for
// planarsid: it drives a mixed decide/count/find workload against a
// running daemon and reports client-observed latency percentiles per
// operation, as JSON (the BENCH_6.json format) or human-readable text.
//
//	planarsid -addr :8080 &
//	planarsiload -addr http://127.0.0.1:8080 -register-grid 24x24 \
//	    -mode both -rate 200 -concurrency 8 -duration 5s -out BENCH_6.json
//
// With -trace-summary FILE it instead reads a planarsid -trace-log
// JSONL file offline — per-endpoint request volume, latency percentiles
// and DP cost totals, plus the slowest recorded spans — and exits
// without generating any load.
//
// Two arrival models, run separately so their numbers are comparable:
//
//   - open loop (-mode open): requests arrive by a Poisson process at
//     -rate per second regardless of how fast the server answers — the
//     model that exposes queueing collapse, because arrivals do not
//     slow down when the server does.
//   - closed loop (-mode closed): -concurrency workers each keep
//     exactly one request in flight — the model that measures best-case
//     per-request service time under a bounded load.
//
// The workload mixes POST /decide, /count and /find by -mix weights,
// and alternates hit and miss patterns by -hit-frac: the hit pattern is
// a 4-cycle (every grid cell), the miss a triangle (grids are
// bipartite), so both the early-exit and the full-run-budget paths of
// the pipeline are exercised. With -patterns N (N > 1) the hit/miss
// pair is replaced by a family of N distinct motifs (cycles, paths and
// stars of growing size) drawn uniformly per request — the
// mixed-pattern workload that exercises the daemon's micro-batching and
// the Index's multi-pattern sweeps across many (k, d) shapes.
// -register-grid registers the target grid first; point -graph at an
// existing registered graph to skip it.
//
// With -chaos the generator expects to be pointed at a daemon running
// under fault injection (planarsid -fault): 500s and 503s stop counting
// as errors and are instead tallied per operation as incidents (500,
// checking the incident id is present) and unavailable (503, checking
// Retry-After is set) — the survival report for a chaos run, where the
// interesting failures are transport errors and malformed responses,
// not the injected faults themselves.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"math/rand"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"planarsi/internal/graph"
	"planarsi/internal/obs"
	"planarsi/internal/serve"
)

type config struct {
	addr        string
	graphName   string
	grid        string
	mode        string
	rate        float64
	concurrency int
	duration    time.Duration
	mix         string
	hitFrac     float64
	patterns    int
	seed        int64
	out         string
	chaos       bool
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", "http://127.0.0.1:8080", "daemon base URL")
	flag.StringVar(&cfg.graphName, "graph", "load", "registered host graph to query")
	flag.StringVar(&cfg.grid, "register-grid", "", "register -graph as an RxC grid first (e.g. 24x24; empty = graph must already exist)")
	flag.StringVar(&cfg.mode, "mode", "both", "arrival model: open (Poisson), closed (fixed concurrency), or both")
	flag.Float64Var(&cfg.rate, "rate", 200, "open-loop arrival rate, requests/second")
	flag.IntVar(&cfg.concurrency, "concurrency", 8, "closed-loop worker count (one in-flight request each)")
	flag.DurationVar(&cfg.duration, "duration", 5*time.Second, "measurement duration per mode")
	flag.StringVar(&cfg.mix, "mix", "decide=60,count=25,find=15", "operation weights")
	flag.Float64Var(&cfg.hitFrac, "hit-frac", 0.5, "fraction of queries using the hit pattern (C4) vs the miss pattern (C3); ignored when -patterns > 1")
	flag.IntVar(&cfg.patterns, "patterns", 1, "distinct patterns in the workload: 1 = the hit/miss pair by -hit-frac, N > 1 = a mixed motif family (cycles, paths, stars of growing size) drawn uniformly, superseding -hit-frac")
	flag.Int64Var(&cfg.seed, "seed", 1, "workload random seed")
	flag.StringVar(&cfg.out, "out", "", "write the JSON report here (empty = stdout)")
	flag.BoolVar(&cfg.chaos, "chaos", false, "chaos mode: tally 500s (incidents) and 503s (unavailable) separately instead of as errors — for daemons running under -fault")
	traceSummary := flag.String("trace-summary", "", "aggregate a planarsid -trace-log JSONL file (per-endpoint latency and cost, slowest spans) and exit without generating load")
	flag.Parse()

	if *traceSummary != "" {
		if err := runTraceSummary(os.Stdout, *traceSummary); err != nil {
			log.Fatalf("planarsiload: -trace-summary: %v", err)
		}
		return
	}

	ops, err := parseMix(cfg.mix)
	if err != nil {
		log.Fatalf("planarsiload: %v", err)
	}
	if cfg.mode != "open" && cfg.mode != "closed" && cfg.mode != "both" {
		log.Fatalf("planarsiload: -mode wants open, closed or both, got %q", cfg.mode)
	}

	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        4 * cfg.concurrency,
		MaxIdleConnsPerHost: 4 * cfg.concurrency,
	}}
	ld := &loader{cfg: cfg, client: client, ops: ops}
	if err := ld.prepare(); err != nil {
		log.Fatalf("planarsiload: %v", err)
	}

	report := Report{
		Description: "planarsiload client-observed latency under mixed decide/count/find load, open-loop (Poisson arrivals) and closed-loop (fixed concurrency) modes",
		Date:        time.Now().UTC().Format("2006-01-02"),
		Target:      cfg.addr,
		Config: ReportConfig{
			Graph: cfg.graphName, Grid: cfg.grid, Mix: cfg.mix,
			HitFrac: cfg.hitFrac, Patterns: cfg.patterns, RatePerSec: cfg.rate,
			Concurrency: cfg.concurrency, DurationSec: cfg.duration.Seconds(),
			Seed: cfg.seed,
		},
		Modes: map[string]*ModeReport{},
	}
	if cfg.mode == "open" || cfg.mode == "both" {
		log.Printf("planarsiload: open loop: Poisson %.0f req/s for %s", cfg.rate, cfg.duration)
		report.Modes["open"] = ld.runOpen()
	}
	if cfg.mode == "closed" || cfg.mode == "both" {
		log.Printf("planarsiload: closed loop: %d workers for %s", cfg.concurrency, cfg.duration)
		report.Modes["closed"] = ld.runClosed()
	}

	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		log.Fatalf("planarsiload: %v", err)
	}
	out = append(out, '\n')
	if cfg.out == "" {
		os.Stdout.Write(out)
	} else {
		if err := os.WriteFile(cfg.out, out, 0o644); err != nil {
			log.Fatalf("planarsiload: %v", err)
		}
		log.Printf("planarsiload: wrote %s", cfg.out)
	}
	for name, m := range report.Modes {
		log.Printf("planarsiload: %s: %d ok, %d errors, %.0f req/s, p50=%.2fms p95=%.2fms p99=%.2fms",
			name, m.Overall.Count, m.Overall.Errors, m.ThroughputRPS,
			m.Overall.P50Millis, m.Overall.P95Millis, m.Overall.P99Millis)
		if cfg.chaos {
			log.Printf("planarsiload: %s chaos: %d incidents (500+id), %d unavailable (503+Retry-After), %d bare 500s, %d bare 503s",
				name, m.Overall.Incidents, m.Overall.Unavailable, m.Overall.BareFaults, m.Overall.BareBusy)
		}
	}
}

// weightedOp is one entry of the operation mix.
type weightedOp struct {
	name   string
	weight int
}

func parseMix(s string) ([]weightedOp, error) {
	var ops []weightedOp
	for _, part := range strings.Split(s, ",") {
		name, w, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("-mix wants op=weight entries, got %q", part)
		}
		switch name {
		case "decide", "count", "find":
		default:
			return nil, fmt.Errorf("-mix op %q: want decide, count or find", name)
		}
		var weight int
		if _, err := fmt.Sscanf(w, "%d", &weight); err != nil || weight < 0 {
			return nil, fmt.Errorf("-mix weight %q: want a non-negative integer", w)
		}
		if weight > 0 {
			ops = append(ops, weightedOp{name, weight})
		}
	}
	if len(ops) == 0 {
		return nil, fmt.Errorf("-mix %q selects no operations", s)
	}
	return ops, nil
}

// loader holds the shared workload state: the HTTP client, the mix, and
// the pre-encoded request bodies (building them per request would make
// the generator the bottleneck before the server is).
type loader struct {
	cfg    config
	client *http.Client
	ops    []weightedOp
	totalW int
	bodies map[string][2][]byte // op -> {hit body, miss body}
	// multi holds the -patterns N > 1 bodies: op -> N pre-encoded motif
	// patterns, drawn uniformly per request instead of the hit/miss pair.
	multi map[string][][]byte
}

// motif returns the i-th pattern of the mixed-family workload: cycles,
// paths and stars of growing size, capped at the engine's pattern limit.
// Even cycles hit on grid targets, odd-size stars and long paths stress
// other shapes, so a family mixes hits and misses across (k, d) shapes.
func motif(i int) *graph.Graph {
	size := 4 + i/3
	if size > 16 {
		size = 16
	}
	switch i % 3 {
	case 0:
		return graph.Cycle(size)
	case 1:
		return graph.Path(size)
	default:
		return graph.Star(size - 1)
	}
}

// prepare registers the grid when asked, checks the daemon is up, and
// pre-encodes one hit and one miss body per operation.
func (l *loader) prepare() error {
	resp, err := l.client.Get(l.cfg.addr + "/healthz")
	if err != nil {
		return fmt.Errorf("daemon not reachable: %w", err)
	}
	drain(resp)

	if l.cfg.grid != "" {
		var r, c int
		if _, err := fmt.Sscanf(l.cfg.grid, "%dx%d", &r, &c); err != nil || r < 2 || c < 2 {
			return fmt.Errorf("-register-grid wants RxC with R,C >= 2, got %q", l.cfg.grid)
		}
		body, _ := json.Marshal(serve.WireGraph(graph.Grid(r, c)))
		resp, err := l.client.Post(l.cfg.addr+"/graphs/"+l.cfg.graphName, "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		defer drain(resp)
		// 409 means the graph already exists (a previous run registered
		// it); anything else non-2xx is a real failure.
		if resp.StatusCode >= 300 && resp.StatusCode != http.StatusConflict {
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
			return fmt.Errorf("register %s: %s: %s", l.cfg.graphName, resp.Status, msg)
		}
	}

	// Hit: a 4-cycle, present in every grid cell. Miss: a triangle —
	// grids are bipartite, so the full run budget executes.
	hit := serve.WireGraph(graph.Cycle(4))
	miss := serve.WireGraph(graph.Cycle(3))
	l.bodies = make(map[string][2][]byte)
	if l.cfg.patterns > 1 {
		l.multi = make(map[string][][]byte)
	}
	for _, op := range l.ops {
		l.totalW += op.weight
		hb, _ := json.Marshal(serve.QueryRequest{Graph: l.cfg.graphName, Pattern: &hit})
		mb, _ := json.Marshal(serve.QueryRequest{Graph: l.cfg.graphName, Pattern: &miss})
		l.bodies[op.name] = [2][]byte{hb, mb}
		if l.multi != nil {
			bodies := make([][]byte, l.cfg.patterns)
			for i := range bodies {
				wg := serve.WireGraph(motif(i))
				bodies[i], _ = json.Marshal(serve.QueryRequest{Graph: l.cfg.graphName, Pattern: &wg})
			}
			l.multi[op.name] = bodies
		}
	}
	return nil
}

// pick draws one (operation, body) pair from the mix. With -patterns
// N > 1 the body is drawn uniformly from the motif family; otherwise
// the hit/miss pair is split by -hit-frac.
func (l *loader) pick(rng *rand.Rand) (string, []byte) {
	w := rng.Intn(l.totalW)
	var op string
	for _, o := range l.ops {
		if w -= o.weight; w < 0 {
			op = o.name
			break
		}
	}
	if l.multi != nil {
		bodies := l.multi[op]
		return op, bodies[rng.Intn(len(bodies))]
	}
	i := 1 // miss
	if rng.Float64() < l.cfg.hitFrac {
		i = 0
	}
	return op, l.bodies[op][i]
}

// modeRun accumulates one mode's measurements.
type modeRun struct {
	perOp map[string]*opStats
	sent  atomic.Uint64
}

type opStats struct {
	hist   *obs.Histogram
	errors atomic.Uint64
	maxNs  atomic.Int64

	// Chaos-mode tallies (zero unless -chaos): injected-fault outcomes
	// that would otherwise drown the error counter.
	incidents   atomic.Uint64 // 500s carrying an incident id
	bareFaults  atomic.Uint64 // 500s WITHOUT an incident id (a real bug)
	unavailable atomic.Uint64 // 503s with Retry-After
	bareBusy    atomic.Uint64 // 503s WITHOUT Retry-After (a real bug)
}

func (l *loader) newRun() *modeRun {
	run := &modeRun{perOp: make(map[string]*opStats)}
	for _, op := range l.ops {
		run.perOp[op.name] = &opStats{hist: obs.NewLatencyHistogram()}
	}
	return run
}

// do issues one request and records its client-observed latency.
func (l *loader) do(run *modeRun, op string, body []byte) {
	st := run.perOp[op]
	start := time.Now()
	resp, err := l.client.Post(l.cfg.addr+"/"+op, "application/json", bytes.NewReader(body))
	d := time.Since(start)
	ok := err == nil && resp.StatusCode == http.StatusOK
	if l.cfg.chaos && err == nil && !ok {
		switch resp.StatusCode {
		case http.StatusInternalServerError:
			var e struct {
				Incident string `json:"incident"`
			}
			raw, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
			_ = json.Unmarshal(raw, &e)
			if e.Incident != "" {
				st.incidents.Add(1)
				ok = true // expected under injected faults
			} else {
				st.bareFaults.Add(1)
			}
		case http.StatusServiceUnavailable:
			if resp.Header.Get("Retry-After") != "" {
				st.unavailable.Add(1)
				ok = true // breaker open / shed / overloaded: by design
			} else {
				st.bareBusy.Add(1)
			}
		}
	}
	if resp != nil {
		drain(resp)
	}
	st.hist.ObserveDuration(d)
	if !ok {
		st.errors.Add(1)
	}
	for {
		prev := st.maxNs.Load()
		if d.Nanoseconds() <= prev || st.maxNs.CompareAndSwap(prev, d.Nanoseconds()) {
			break
		}
	}
}

// runOpen drives the open-loop mode: arrivals by a Poisson process at
// cfg.rate, each request on its own goroutine so a slow server cannot
// slow the arrival process down (the defining property of open loop).
func (l *loader) runOpen() *ModeReport {
	run := l.newRun()
	rng := rand.New(rand.NewSource(l.cfg.seed))
	var wg sync.WaitGroup
	start := time.Now()
	deadline := start.Add(l.cfg.duration)
	next := start
	for {
		// Exponential inter-arrival: -ln(U)/rate seconds.
		next = next.Add(time.Duration(-math.Log(1-rng.Float64()) / l.cfg.rate * float64(time.Second)))
		if next.After(deadline) {
			break
		}
		time.Sleep(time.Until(next))
		op, body := l.pick(rng)
		run.sent.Add(1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			l.do(run, op, body)
		}()
	}
	wg.Wait()
	return l.reportMode(run, time.Since(start))
}

// runClosed drives the closed-loop mode: cfg.concurrency workers, each
// holding exactly one request in flight for the full duration.
func (l *loader) runClosed() *ModeReport {
	run := l.newRun()
	var wg sync.WaitGroup
	start := time.Now()
	deadline := start.Add(l.cfg.duration)
	for w := 0; w < l.cfg.concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(l.cfg.seed + int64(w)*7919))
			for time.Now().Before(deadline) {
				op, body := l.pick(rng)
				run.sent.Add(1)
				l.do(run, op, body)
			}
		}(w)
	}
	wg.Wait()
	return l.reportMode(run, time.Since(start))
}

func (l *loader) reportMode(run *modeRun, elapsed time.Duration) *ModeReport {
	m := &ModeReport{
		Sent:       run.sent.Load(),
		ElapsedSec: elapsed.Seconds(),
		Ops:        make(map[string]OpReport, len(run.perOp)),
	}
	// Overall percentiles come from a merged histogram: every opStats
	// shares the same bucket layout, so bucket-wise summation is exact.
	overall := obs.NewLatencyHistogram().Snapshot()
	overall.Counts = make([]uint64, len(overall.Counts))
	var overallErrs uint64
	var overallMax int64
	var sumChaos OpReport
	for name, st := range run.perOp {
		h := st.hist.Snapshot()
		r := opReport(h, st.errors.Load(), st.maxNs.Load())
		r.Incidents = st.incidents.Load()
		r.BareFaults = st.bareFaults.Load()
		r.Unavailable = st.unavailable.Load()
		r.BareBusy = st.bareBusy.Load()
		m.Ops[name] = r
		for i, c := range h.Counts {
			overall.Counts[i] += c
		}
		overall.Count += h.Count
		overall.Sum += h.Sum
		overallErrs += st.errors.Load()
		overallMax = max(overallMax, st.maxNs.Load())
		sumChaos.Incidents += r.Incidents
		sumChaos.BareFaults += r.BareFaults
		sumChaos.Unavailable += r.Unavailable
		sumChaos.BareBusy += r.BareBusy
	}
	m.Overall = opReport(overall, overallErrs, overallMax)
	m.Overall.Incidents = sumChaos.Incidents
	m.Overall.BareFaults = sumChaos.BareFaults
	m.Overall.Unavailable = sumChaos.Unavailable
	m.Overall.BareBusy = sumChaos.BareBusy
	if elapsed > 0 {
		m.ThroughputRPS = float64(overall.Count) / elapsed.Seconds()
	}
	return m
}

func opReport(h obs.HistSnapshot, errs uint64, maxNs int64) OpReport {
	return OpReport{
		Count:      h.Count,
		Errors:     errs,
		MeanMillis: round2(h.Mean() * 1e3),
		P50Millis:  round2(h.Quantile(0.50) * 1e3),
		P95Millis:  round2(h.Quantile(0.95) * 1e3),
		P99Millis:  round2(h.Quantile(0.99) * 1e3),
		MaxMillis:  round2(float64(maxNs) / 1e6),
	}
}

func round2(v float64) float64 { return math.Round(v*100) / 100 }

func drain(resp *http.Response) {
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
}

// Report is the JSON document planarsiload emits (BENCH_6.json).
type Report struct {
	PR          int                    `json:"pr,omitempty"`
	Description string                 `json:"description"`
	Date        string                 `json:"date"`
	Target      string                 `json:"target"`
	Config      ReportConfig           `json:"config"`
	Modes       map[string]*ModeReport `json:"modes"`
}

// ReportConfig echoes the generator configuration into the report.
type ReportConfig struct {
	Graph       string  `json:"graph"`
	Grid        string  `json:"grid,omitempty"`
	Mix         string  `json:"mix"`
	HitFrac     float64 `json:"hitFrac"`
	Patterns    int     `json:"patterns,omitempty"`
	RatePerSec  float64 `json:"ratePerSec"`
	Concurrency int     `json:"concurrency"`
	DurationSec float64 `json:"durationSec"`
	Seed        int64   `json:"seed"`
}

// ModeReport is one arrival model's measurements.
type ModeReport struct {
	Sent          uint64              `json:"sent"`
	ElapsedSec    float64             `json:"elapsedSec"`
	ThroughputRPS float64             `json:"throughputRps"`
	Overall       OpReport            `json:"overall"`
	Ops           map[string]OpReport `json:"ops"`
}

// OpReport is one operation's client-observed latency summary. Count
// includes errored requests; percentiles are histogram-interpolated.
type OpReport struct {
	Count      uint64  `json:"count"`
	Errors     uint64  `json:"errors"`
	MeanMillis float64 `json:"meanMillis"`
	P50Millis  float64 `json:"p50Millis"`
	P95Millis  float64 `json:"p95Millis"`
	P99Millis  float64 `json:"p99Millis"`
	MaxMillis  float64 `json:"maxMillis"`

	// Chaos-mode (-chaos) outcome tallies. Incidents/Unavailable are
	// well-formed fault answers (500 + incident id, 503 + Retry-After);
	// their Bare* counterparts are the malformed ones — nonzero Bare*
	// under chaos means the resilience layer has a bug.
	Incidents   uint64 `json:"incidents,omitempty"`
	BareFaults  uint64 `json:"bareFaults,omitempty"`
	Unavailable uint64 `json:"unavailable,omitempty"`
	BareBusy    uint64 `json:"bareBusy,omitempty"`
}
