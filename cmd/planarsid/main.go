// Command planarsid is the long-lived query daemon: it serves the
// paper's planar subgraph isomorphism and vertex connectivity pipeline
// over HTTP/JSON, keeping host graphs resident in a registry of
// planarsi Indexes so every query amortizes the shared target-side
// preprocessing, and coalescing concurrent queries into micro-batches.
//
//	planarsid -addr :8080 -graph city=city.edges -graph grid=grid.edges
//
// Endpoints (JSON bodies unless noted):
//
//	POST   /graphs/{name}   register a host graph (edge-list text body,
//	                        or {"n":..,"edges":[[u,v],..]} as JSON)
//	GET    /graphs          list registered graphs with cache stats
//	DELETE /graphs/{name}   remove a graph
//	POST   /graphs/{name}/edges
//	                        apply an edit batch {"add":[[u,v],..],
//	                        "remove":[[u,v],..]} to a live graph,
//	                        advancing its edit epoch; optional
//	                        "ifEpoch" (409 on mismatch) and
//	                        "requirePlanar" (422 if planarity would be
//	                        lost). Unaffected cached artifacts are
//	                        retained; in-flight queries finish against
//	                        the pre-edit graph.
//	POST   /decide          {"graph":"g","pattern":{...}} -> {"found":..}
//	POST   /count           like decide, plus "count"
//	POST   /find            one witness occurrence, if any
//	POST   /separating      adds "terminals":[v,..]; witness occurrence
//	POST   /connectivity    {"graph":"g"} -> {"connectivity":..,"cut":..}
//	POST   /snapshot        checkpoint every graph to -snapshot-dir
//	GET    /stats           registry, scheduler and endpoint stats
//	                        (latency p50/p95/p99 per endpoint)
//	GET    /metrics         Prometheus text exposition of the same
//	                        histograms and counters
//	GET    /healthz         liveness probe
//
// Query endpoints accept ?trace=1, which adds the query's band-level
// span timeline ("trace") to the response — which runs and bands ran,
// how long each took, each band's DP cost counters (nodes, states,
// joins, emissions, bytes), and where cancellation or fallback struck.
// With -slow-query, requests at or above the threshold are logged,
// including their slowest bands and cost totals when traced.
//
// Every response carries an X-Request-Id header; a request that arrives
// with a W3C traceparent header joins that trace (the response echoes
// traceparent with the request id as parent-id), and the id is stamped
// on slow-query and incident log lines. -trace-log appends one JSON
// line per request to a file (full span timeline and cost for traced
// requests) that planarsiload -trace-summary aggregates offline.
// -debug-addr serves net/http/pprof on a separate listener, and
// /metrics exposes memo-cache traffic per artifact class, work-stealing
// pool internals, and Go runtime health alongside the request
// histograms.
//
// Graphs preloaded with -graph are pinned: the memory budget may shed
// their cached artifacts but never unregisters them. Decide/count
// queries arriving within -window of each other against the same graph
// are coalesced into one batched scan (0 disables coalescing; with
// -adaptive-window the window is a cap that shrinks toward zero while
// arrivals are sparse). SIGINT/SIGTERM shut down gracefully, draining
// in-flight requests.
//
// With -snapshot-dir, the daemon is restart-durable: boot restores
// every *.snap in the directory (graphs come back with their
// preprocessing caches warm, so the first queries skip the O(d·n)
// cover construction), graceful shutdown persists every registered
// graph back, and POST /snapshot checkpoints on demand. A -graph flag
// whose name was already restored from a snapshot is skipped.
//
// The daemon is panic-isolated end to end: a query that panics — in
// the DP engines, on a fork-join worker, anywhere under the handler —
// is answered with a 500 carrying an opaque incident id while the full
// stack is logged, and the process stays up. Repeated panics against
// one (graph, kind) pair open a circuit breaker (-breaker-fails,
// -breaker-cooldown) that answers 503 with a Retry-After header until
// a half-open probe succeeds. Requests whose remaining -deadline
// budget is below the endpoint's observed median latency are shed with
// a 503 at admission instead of burning cores on doomed work. -fault
// arms the deterministic fault-injection harness (testing only; see
// internal/fault and scripts/chaos-smoke.sh).
//
// The parallel runtime is sized with -procs (0 tracks GOMAXPROCS) and
// selected with -par-engine (the work-stealing pool by default; the
// semaphore engine is kept for ablations). Request contexts are honored
// end to end: a client that disconnects — or outlives -deadline — has
// its query cancelled mid-band instead of burning cores to completion,
// and requests that are already dead at admission are refused with 499.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	_ "net/http/pprof" // debug handlers, served only on -debug-addr
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"planarsi/internal/core"
	"planarsi/internal/fault"
	"planarsi/internal/gio"
	"planarsi/internal/par"
	"planarsi/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
	seed := flag.Uint64("seed", 1, "random seed fixed for every query")
	runs := flag.Int("runs", 0, "cover repetitions (0 = w.h.p. default)")
	memMB := flag.Int64("mem-mb", 1024, "memory budget for graphs + cached artifacts, in MiB (0 = unlimited)")
	window := flag.Duration("window", 2*time.Millisecond, "micro-batching window for decide/count (0 disables coalescing)")
	maxBatch := flag.Int("max-batch", 64, "dispatch a batch early at this size")
	inflight := flag.Int("inflight", 0, "max concurrently executing batches (0 = parallelism)")
	maxQueued := flag.Int("max-queued", 4096, "queued-request bound before 503s")
	maxGraphN := flag.Int("max-graph-n", 1<<21, "largest accepted graph (vertices)")
	procs := flag.Int("procs", 0, "worker count for the parallel runtime (0 tracks GOMAXPROCS)")
	engine := flag.String("par-engine", "pool", "parallel execution engine: pool (work-stealing) or semaphore (ablation)")
	deadline := flag.Duration("deadline", 0, "per-request deadline; expired queries are cancelled mid-band and answered 504 (0 = none)")
	snapDir := flag.String("snapshot-dir", "", "snapshot directory: warm-boot from its *.snap files, persist on graceful shutdown, expose POST /snapshot (empty disables persistence)")
	adaptive := flag.Bool("adaptive-window", false, "adapt the micro-batch window to the arrival rate (-window becomes the cap; idle traffic dispatches near-immediately)")
	slowQuery := flag.Duration("slow-query", 0, "log requests at or above this handler latency, with band spans when traced (0 disables)")
	breakerFails := flag.Int("breaker-fails", 5, "consecutive query panics before a (graph, kind) circuit breaker opens (0 disables breakers)")
	breakerCooldown := flag.Duration("breaker-cooldown", 5*time.Second, "how long an open circuit rejects with 503 before a half-open probe")
	faultSpec := flag.String("fault", "", "deterministic fault injection spec, e.g. 'dp.panic=first:2,snapshot.write=every:3' (empty disables; testing only)")
	faultSeed := flag.Uint64("fault-seed", 1, "seed for probabilistic fault-injection rules")
	debugAddr := flag.String("debug-addr", "", "listen address for net/http/pprof debug handlers (empty disables; keep it loopback-only)")
	traceLog := flag.String("trace-log", "", "append one JSON line per request to this file (spans and cost for ?trace=1 requests); read it back with planarsiload -trace-summary")
	traceSpanLimit := flag.Int("trace-span-limit", 0, "max spans kept per traced request (0 = default 512); excess spans are counted as dropped")
	var preload []string
	flag.Func("graph", "preload and pin a host graph as name=edgelist.file (repeatable)", func(v string) error {
		preload = append(preload, v)
		return nil
	})
	flag.Parse()

	switch *engine {
	case "pool":
		par.SetEngine(par.EnginePool)
	case "semaphore":
		par.SetEngine(par.EngineSemaphore)
	default:
		log.Fatalf("planarsid: -par-engine wants pool or semaphore, got %q", *engine)
	}
	if *procs > 0 {
		par.SetParallelism(*procs)
	}
	log.Printf("planarsid: parallel runtime: %d workers (%s engine)", par.Parallelism(), *engine)
	if *faultSpec != "" {
		if err := fault.Enable(*faultSpec, *faultSeed); err != nil {
			log.Fatalf("planarsid: -fault: %v", err)
		}
		log.Printf("planarsid: FAULT INJECTION ACTIVE (testing only): %s", fault.Describe())
	}
	var traceLogFile *os.File
	if *traceLog != "" {
		f, err := os.OpenFile(*traceLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			log.Fatalf("planarsid: -trace-log: %v", err)
		}
		traceLogFile = f
		log.Printf("planarsid: writing request traces to %s", *traceLog)
	}
	srvOpt := serve.Options{
		Pipeline: core.Options{Seed: *seed, MaxRuns: *runs},
		MaxBytes: *memMB << 20,
		Scheduler: serve.SchedulerOptions{
			Window:         serve.WindowFromFlag(*window),
			AdaptiveWindow: *adaptive,
			MaxBatch:       *maxBatch,
			MaxInFlight:    *inflight,
			MaxQueued:      *maxQueued,
		},
		MaxGraphVertices: *maxGraphN,
		RequestTimeout:   *deadline,
		SnapshotDir:      *snapDir,
		SlowQuery:        *slowQuery,
		Breaker: serve.BreakerOptions{
			Threshold: *breakerFails,
			Cooldown:  *breakerCooldown,
		},
		Logger:         slog.New(slog.NewTextHandler(os.Stderr, nil)),
		TraceSpanLimit: *traceSpanLimit,
	}
	if traceLogFile != nil {
		// Assigned only when non-nil: a typed-nil *os.File inside the
		// io.Writer interface would defeat the TraceLog == nil check.
		srvOpt.TraceLog = traceLogFile
	}
	srv := serve.New(srvOpt)

	if *snapDir != "" {
		infos, err := srv.RestoreSnapshots()
		for _, in := range infos {
			log.Printf("planarsid: warm boot: restored graph %s (n=%d m=%d, clusterings=%d covers=%d) from %s — preprocessing skipped",
				in.Name, in.N, in.M, in.Clusterings, in.Covers, in.File)
		}
		if err != nil {
			log.Printf("planarsid: snapshot restore (continuing cold for the affected graphs): %v", err)
		}
	}

	for _, spec := range preload {
		name, path, ok := strings.Cut(spec, "=")
		if !ok || name == "" || path == "" {
			log.Fatalf("planarsid: -graph wants name=file, got %q", spec)
		}
		if e := srv.Registry().Acquire(name); e != nil {
			srv.Registry().Release(e)
			log.Printf("planarsid: graph %s already restored from snapshot; skipping %s", name, path)
			continue
		}
		g, err := gio.ReadEdgeListFile(path)
		if err != nil {
			log.Fatalf("planarsid: graph %s: %v", name, err)
		}
		if _, err := srv.Registry().Register(name, g, true); err != nil {
			log.Fatalf("planarsid: %v", err)
		}
		log.Printf("planarsid: loaded graph %s (n=%d m=%d) from %s", name, g.N(), g.M(), path)
	}
	if st := srv.Stats().Registry; st.MaxBytes > 0 && st.Bytes > st.MaxBytes {
		log.Printf("planarsid: warning: preloaded graphs hold %d MiB, over the %d MiB budget — pinned graphs are never evicted, so the budget cannot be enforced",
			st.Bytes>>20, st.MaxBytes>>20)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("planarsid: %v", err)
	}
	if *debugAddr != "" {
		// pprof registers on http.DefaultServeMux; serving that mux on a
		// separate listener keeps profiling endpoints off the query port.
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			log.Fatalf("planarsid: -debug-addr: %v", err)
		}
		log.Printf("planarsid: debug/pprof listening on %s", dln.Addr())
		go func() {
			if err := http.Serve(dln, nil); err != nil {
				log.Printf("planarsid: debug server: %v", err)
			}
		}()
	}
	// The resolved address line doubles as the readiness signal for
	// scripts (see make serve-smoke).
	log.Printf("planarsid: listening on %s", ln.Addr())

	httpSrv := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		log.Fatalf("planarsid: %v", err)
	case <-ctx.Done():
	}
	stop()
	log.Printf("planarsid: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Printf("planarsid: shutdown: %v", err)
		os.Exit(1)
	}
	if *snapDir != "" {
		infos, err := srv.SaveSnapshots()
		if err != nil {
			log.Printf("planarsid: snapshot persist: %v", err)
		}
		for _, in := range infos {
			log.Printf("planarsid: persisted graph %s (clusterings=%d covers=%d, %d bytes) to %s",
				in.Name, in.Clusterings, in.Covers, in.FileBytes, in.File)
		}
	}
	if traceLogFile != nil {
		// Shutdown has drained in-flight requests, so no writer races the
		// close.
		if err := traceLogFile.Close(); err != nil {
			log.Printf("planarsid: -trace-log close: %v", err)
		}
	}
	st := srv.Stats()
	fmt.Fprintf(os.Stderr, "planarsid: served %d requests in %d batches (%d rejected)\n",
		st.Scheduler.Requests, st.Scheduler.Batches, st.Scheduler.Rejected)
}
