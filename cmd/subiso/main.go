// Command subiso decides, finds, lists or counts occurrences of a pattern
// graph inside a target graph using the paper's parallel planar subgraph
// isomorphism pipeline.
//
// Usage:
//
//	subiso -target g.edges -pattern h.edges                 # decide
//	subiso -target g.edges -pattern h.edges -mode find      # one witness
//	subiso -target g.edges -pattern h.edges -mode list      # all occurrences
//	subiso -target g.edges -pattern h.edges -mode count
//
// Both files use the edge-list format: one "u v" pair per line, '#'
// comments, optional "n <count>" header. The pattern may be disconnected
// in decide mode. With -stats, work/depth counters and pipeline
// statistics are printed to stderr.
package main

import (
	"flag"
	"fmt"
	"os"

	"planarsi"
	"planarsi/internal/gio"
)

func main() {
	target := flag.String("target", "", "target graph edge-list file (required)")
	pattern := flag.String("pattern", "", "pattern graph edge-list file (required)")
	mode := flag.String("mode", "decide", "decide | find | list | count")
	seed := flag.Uint64("seed", 1, "random seed")
	runs := flag.Int("runs", 0, "cover repetitions (0 = w.h.p. default)")
	stats := flag.Bool("stats", false, "print work/depth statistics to stderr")
	flag.Parse()

	if *target == "" || *pattern == "" {
		flag.Usage()
		os.Exit(2)
	}
	g, err := gio.ReadEdgeListFile(*target)
	if err != nil {
		fatal("target: %v", err)
	}
	h, err := gio.ReadEdgeListFile(*pattern)
	if err != nil {
		fatal("pattern: %v", err)
	}

	opt := planarsi.Options{Seed: *seed, MaxRuns: *runs}
	var st planarsi.Stats
	if *stats {
		opt.Tracker = planarsi.NewTracker()
		opt.Stats = &st
	}

	switch *mode {
	case "decide":
		found, err := planarsi.Decide(g, h, opt)
		if err != nil {
			fatal("%v", err)
		}
		fmt.Println(found)
		report(opt, st)
		if !found {
			os.Exit(1)
		}
	case "find":
		occ, err := planarsi.FindOccurrence(g, h, opt)
		if err != nil {
			fatal("%v", err)
		}
		report(opt, st)
		if occ == nil {
			fmt.Println("not found")
			os.Exit(1)
		}
		printOccurrence(occ)
	case "list":
		occs, err := planarsi.ListOccurrences(g, h, opt)
		if err != nil {
			fatal("%v", err)
		}
		for _, occ := range occs {
			printOccurrence(occ)
		}
		report(opt, st)
	case "count":
		count, err := planarsi.CountOccurrences(g, h, opt)
		if err != nil {
			fatal("%v", err)
		}
		fmt.Println(count)
		report(opt, st)
	default:
		fatal("unknown mode %q", *mode)
	}
}

func printOccurrence(occ planarsi.Occurrence) {
	for u, v := range occ {
		if u > 0 {
			fmt.Print(" ")
		}
		fmt.Printf("%d->%d", u, v)
	}
	fmt.Println()
}

func report(opt planarsi.Options, st planarsi.Stats) {
	if opt.Tracker == nil {
		return
	}
	fmt.Fprintf(os.Stderr, "stats: %s runs=%d bands=%d maxWidth=%d fallback=%d\n",
		opt.Tracker, st.Runs, st.Bands, st.MaxBandWidth, st.FallbackBands)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "subiso: "+format+"\n", args...)
	os.Exit(2)
}
