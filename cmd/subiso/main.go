// Command subiso decides, finds, lists or counts occurrences of pattern
// graphs inside a target graph using the paper's parallel planar subgraph
// isomorphism pipeline.
//
// Usage:
//
//	subiso -target g.edges -pattern h.edges                 # decide
//	subiso -target g.edges -pattern h.edges -mode find      # one witness
//	subiso -target g.edges -pattern h.edges -mode list      # all occurrences
//	subiso -target g.edges -pattern h.edges -mode count
//	subiso -target g.edges -pattern h1.edges,h2.edges,...   # batched scan
//	cat g.edges | subiso -target - -pattern h.edges         # target on stdin
//
// All files use the edge-list format: one "u v" pair per line, '#'
// comments, optional "n <count>" header; the path "-" reads standard
// input (for at most one of the inputs). Patterns may be disconnected in
// decide mode. -pattern accepts a comma-separated list; the target is
// preprocessed once (planarsi.Index) and shared by every query. Decide
// and count batches run concurrently over the shared decompositions
// (Index.Scan/ScanCount); find and list answer patterns one at a time,
// still reusing the Index. One line is printed per pattern. Errors abort
// the run with a nonzero exit before any result is printed — a failing
// batch never produces partial output. With -stats, work/depth counters
// and pipeline statistics are printed to stderr.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"planarsi"
	"planarsi/internal/gio"
)

func main() {
	target := flag.String("target", "", "target graph edge-list file, or - for stdin (required)")
	pattern := flag.String("pattern", "", "pattern edge-list file(s), comma-separated, - for stdin (required)")
	mode := flag.String("mode", "decide", "decide | find | list | count")
	seed := flag.Uint64("seed", 1, "random seed")
	runs := flag.Int("runs", 0, "cover repetitions (0 = w.h.p. default)")
	stats := flag.Bool("stats", false, "print work/depth statistics to stderr")
	flag.Parse()

	if *target == "" || *pattern == "" {
		flag.Usage()
		os.Exit(2)
	}
	files := strings.Split(*pattern, ",")
	stdins := 0
	for _, f := range append([]string{*target}, files...) {
		if f == "-" {
			stdins++
		}
	}
	if stdins > 1 {
		fatal("only one input may be stdin (-)")
	}
	g, err := gio.ReadEdgeListFile(*target)
	if err != nil {
		fatal("target: %v", err)
	}
	hs := make([]*planarsi.Graph, len(files))
	for i, f := range files {
		if hs[i], err = gio.ReadEdgeListFile(f); err != nil {
			fatal("pattern: %v", err)
		}
		if hs[i].N() > planarsi.MaxPatternSize {
			fatal("%s: pattern has %d vertices, over the engine limit of %d",
				f, hs[i].N(), planarsi.MaxPatternSize)
		}
	}

	opt := planarsi.Options{Seed: *seed, MaxRuns: *runs}
	var st planarsi.Stats
	if *stats {
		opt.Tracker = planarsi.NewTracker()
		opt.Stats = &st
	}
	// One Index serves the whole invocation: the target is preprocessed
	// once even when several patterns are given, and answers are
	// identical to the one-shot API's for the same options.
	ix := planarsi.NewIndex(g, opt)
	batch := len(hs) > 1

	// The Index dedupes isomorphic batch members internally; report the
	// leverage so users see when their batch collapsed.
	if batch {
		distinct := make(map[string]struct{}, len(hs))
		for _, h := range hs {
			distinct[planarsi.CanonicalPatternKey(h)] = struct{}{}
		}
		if dup := len(hs) - len(distinct); dup > 0 {
			fmt.Fprintf(os.Stderr, "subiso: %d of %d patterns are isomorphic duplicates (%d distinct); duplicates share one query\n",
				dup, len(hs), len(distinct))
		}
	}

	// Results are buffered and only printed once the whole batch has
	// succeeded, so a failing pattern aborts with exit 2 and no partial
	// output.
	var out strings.Builder
	exit := 0
	switch *mode {
	case "decide":
		results := ix.Scan(context.Background(), hs)
		for i, res := range results {
			if res.Err != nil {
				fatal("%s: %v", files[i], res.Err)
			}
		}
		for i, res := range results {
			printBatch(&out, batch, files[i], res.Found)
			if !res.Found {
				exit = 1
			}
		}
	case "count":
		results := ix.ScanCount(context.Background(), hs)
		for i, res := range results {
			if res.Err != nil {
				fatal("%s: %v", files[i], res.Err)
			}
		}
		for i, res := range results {
			printBatch(&out, batch, files[i], res.Count)
		}
	case "find":
		for i, h := range hs {
			occ, err := ix.FindOccurrence(h)
			if err != nil {
				fatal("%s: %v", files[i], err)
			}
			if occ == nil {
				printBatch(&out, batch, files[i], "not found")
				exit = 1
				continue
			}
			if batch {
				fmt.Fprintf(&out, "%s: ", files[i])
			}
			printOccurrence(&out, occ)
		}
	case "list":
		for i, h := range hs {
			occs, err := ix.ListOccurrences(h)
			if err != nil {
				fatal("%s: %v", files[i], err)
			}
			for _, occ := range occs {
				if batch {
					fmt.Fprintf(&out, "%s: ", files[i])
				}
				printOccurrence(&out, occ)
			}
		}
	default:
		fatal("unknown mode %q", *mode)
	}
	fmt.Print(out.String())
	report(opt, st)
	os.Exit(exit)
}

func printBatch(out *strings.Builder, batch bool, file string, v any) {
	if batch {
		fmt.Fprintf(out, "%s: %v\n", file, v)
	} else {
		fmt.Fprintln(out, v)
	}
}

func printOccurrence(out *strings.Builder, occ planarsi.Occurrence) {
	for u, v := range occ {
		if u > 0 {
			fmt.Fprint(out, " ")
		}
		fmt.Fprintf(out, "%d->%d", u, v)
	}
	fmt.Fprintln(out)
}

func report(opt planarsi.Options, st planarsi.Stats) {
	if opt.Tracker == nil {
		return
	}
	fmt.Fprintf(os.Stderr, "stats: %s runs=%d bands=%d maxWidth=%d fallback=%d\n",
		opt.Tracker, st.Runs, st.Bands, st.MaxBandWidth, st.FallbackBands)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "subiso: "+format+"\n", args...)
	os.Exit(2)
}
