// Command paperbench regenerates the paper's tables and figures as
// empirical measurements and prints them in paper-style rows.
//
// Usage:
//
//	paperbench -all                 # every experiment, full sweeps
//	paperbench -run table1,fig6    # selected experiments
//	paperbench -quick -all          # shrunken sweeps for a fast pass
//	paperbench -list                # available experiment ids
//
// Exit status is nonzero when any shape check fails, so the harness can
// gate CI on the paper's claims.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"planarsi/internal/experiments"
)

func main() {
	all := flag.Bool("all", false, "run every experiment")
	run := flag.String("run", "", "comma-separated experiment ids (see -list)")
	quick := flag.Bool("quick", false, "shrink sweeps for a fast pass")
	list := flag.Bool("list", false, "list experiment ids and exit")
	seed := flag.Uint64("seed", 2020, "random seed (SPAA 2020)")
	flag.Parse()

	if *list {
		for _, name := range experiments.Names() {
			fmt.Println(name)
		}
		return
	}
	cfg := experiments.Config{Quick: *quick, Seed: *seed}
	var tables []*experiments.Table
	switch {
	case *all:
		tables = experiments.All(cfg)
	case *run != "":
		for _, name := range strings.Split(*run, ",") {
			name = strings.TrimSpace(name)
			f := experiments.ByName(name)
			if f == nil {
				fmt.Fprintf(os.Stderr, "paperbench: unknown experiment %q (see -list)\n", name)
				os.Exit(2)
			}
			tables = append(tables, f(cfg))
		}
	default:
		flag.Usage()
		os.Exit(2)
	}

	failed := false
	for _, t := range tables {
		fmt.Println(t.String())
		if t.Failed() {
			failed = true
		}
	}
	if failed {
		fmt.Fprintln(os.Stderr, "paperbench: at least one shape check FAILED")
		os.Exit(1)
	}
}
