// Command planarvc decides the vertex connectivity of a planar graph
// using the paper's separating-cycle reduction (Section 5).
//
// The algorithm needs a combinatorial embedding. Generated families carry
// one; raw edge lists are embedded automatically with the built-in DMP
// planarity algorithm (or use an explicit straight-line drawing via
// -coords):
//
//	planarvc -gen grid -n 400              # 20x20 grid: connectivity 2
//	planarvc -gen icosahedron              # connectivity 5
//	planarvc -input g.edges                # embed automatically
//	planarvc -input g.edges -coords g.xy   # use the given drawing
//	cat g.edges | planarvc -input -        # edge list on stdin
//
// The path "-" reads standard input (for -input or -coords, not both).
// Parse errors abort with exit status 2 before any output is printed.
//
// Generated families: path, cycle, star, wheel, grid, bipyramid,
// apollonian, randomplanar, tetrahedron, cube, octahedron, dodecahedron,
// icosahedron. With -oracle, the max-flow baseline cross-checks the
// result.
package main

import (
	"flag"
	"fmt"
	"math/rand/v2"
	"os"

	"planarsi"
	"planarsi/internal/flow"
	"planarsi/internal/gio"
)

func main() {
	gen := flag.String("gen", "", "generated family (see package comment)")
	n := flag.Int("n", 100, "size for generated families")
	input := flag.String("input", "", "edge-list file, or - for stdin")
	coords := flag.String("coords", "", "coordinates file ('v x y' lines), or - for stdin")
	seed := flag.Uint64("seed", 1, "random seed")
	oracle := flag.Bool("oracle", false, "cross-check with the max-flow baseline")
	stats := flag.Bool("stats", false, "print work/depth statistics to stderr")
	flag.Parse()

	g, err := loadGraph(*gen, *n, *input, *coords, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "planarvc: %v\n", err)
		os.Exit(2)
	}

	opt := planarsi.Options{Seed: *seed}
	if *stats {
		opt.Tracker = planarsi.NewTracker()
	}
	res, err := planarsi.VertexConnectivity(g, opt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "planarvc: %v\n", err)
		os.Exit(2)
	}
	fmt.Printf("n=%d m=%d connectivity=%d\n", g.N(), g.M(), res.Connectivity)
	if res.Cut != nil {
		fmt.Printf("cut=%v verified=%v\n", res.Cut, planarsi.VerifyCut(g, res.Cut))
	}
	if *stats && opt.Tracker != nil {
		fmt.Fprintf(os.Stderr, "stats: %s cycleChecks=%d\n", opt.Tracker, res.CycleChecks)
	}
	if *oracle {
		want := flow.VertexConnectivity(g)
		fmt.Printf("oracle=%d agree=%v\n", want, want == res.Connectivity)
		if want != res.Connectivity {
			os.Exit(1)
		}
	}
}

func loadGraph(gen string, n int, input, coords string, seed uint64) (*planarsi.Graph, error) {
	if input != "" {
		if coords != "" {
			return gio.ReadEmbeddedFile(input, coords)
		}
		g, err := gio.ReadEdgeListFile(input)
		if err != nil {
			return nil, err
		}
		return planarsi.EmbedPlanar(g)
	}
	rng := rand.New(rand.NewPCG(seed, 0x1234))
	switch gen {
	case "path":
		return planarsi.Path(n), nil
	case "cycle":
		return planarsi.Cycle(n), nil
	case "star":
		return planarsi.Star(n), nil
	case "wheel":
		return planarsi.Wheel(n), nil
	case "grid":
		side := 1
		for side*side < n {
			side++
		}
		return planarsi.Grid(side, side), nil
	case "bipyramid":
		return planarsi.Bipyramid(n), nil
	case "apollonian":
		return planarsi.Apollonian(n, rng), nil
	case "randomplanar":
		return planarsi.RandomPlanar(n, 0.6, rng), nil
	case "tetrahedron":
		return planarsi.Tetrahedron(), nil
	case "cube":
		return planarsi.Cube(), nil
	case "octahedron":
		return planarsi.Octahedron(), nil
	case "dodecahedron":
		return planarsi.Dodecahedron(), nil
	case "icosahedron":
		return planarsi.Icosahedron(), nil
	case "":
		return nil, fmt.Errorf("need -gen or -input (see -help)")
	}
	return nil, fmt.Errorf("unknown family %q", gen)
}
