#!/usr/bin/env bash
# coverage-check: run the full test suite with a coverage profile and
# enforce the ratcheted floor (used by `make coverage` and the CI
# coverage job, which also uploads the profile as an artifact).
#
# The floor is a ratchet, not a target: it sits a couple of points below
# the measured total so unrelated churn doesn't flake the job, and it
# only ever moves UP — when a PR meaningfully raises total coverage,
# raise the floor to trail it. Lowering the floor is a red flag in
# review.
set -euo pipefail
cd "$(dirname "$0")/.."

FLOOR=${COVERAGE_FLOOR:-70.0}
profile=${1:-coverage.out}

go test -count=1 -coverprofile="$profile" ./...

total=$(go tool cover -func="$profile" | awk '/^total:/ {sub(/%/, "", $3); print $3}')
[ -n "$total" ] || { echo "coverage-check: no total in $profile"; exit 1; }

# awk does the float compare; [ ] only handles integers.
if awk -v t="$total" -v f="$FLOOR" 'BEGIN { exit !(t < f) }'; then
    echo "coverage-check: FAIL — total coverage $total% is below the $FLOOR% floor"
    echo "coverage-check: per-function profile (worst offenders):"
    go tool cover -func="$profile" | sort -t$'\t' -k3 -n | head -20
    exit 1
fi
echo "coverage-check: ok — total coverage $total% (floor $FLOOR%)"
