#!/usr/bin/env bash
# metrics-lint: promtool-style structural check over a Prometheus text
# exposition (format 0.0.4), read from the file argument or stdin.
# Enforces what a scraper and this repo's conventions rely on:
#
#   - every sample line is "name{labels} value" with the repo's family
#     naming (lowercase letters and underscores only);
#   - every family's HELP and TYPE headers precede its first sample,
#     with a known TYPE;
#   - histogram bucket series are cumulative (non-decreasing in le
#     order as emitted) and end with an le="+Inf" bucket equal to the
#     series' _count sample.
#
# Exits nonzero with one line per violation (used by serve-smoke).
set -euo pipefail

file="${1:-/dev/stdin}"

awk '
function err(msg) { print "metrics-lint: line " NR ": " msg; bad = 1 }
function base(name) {
    # A histogram family owns its _bucket/_sum/_count series.
    if (name ~ /_bucket$/) { sub(/_bucket$/, "", name) }
    else if (name ~ /_sum$/ && (substr(name, 1, length(name) - 4) in type)) { sub(/_sum$/, "", name) }
    else if (name ~ /_count$/ && (substr(name, 1, length(name) - 6) in type)) { sub(/_count$/, "", name) }
    return name
}
/^$/ { next }
/^# HELP / {
    name = $3
    if (name in sampled) err("HELP for " name " after its samples")
    help[name] = 1
    next
}
/^# TYPE / {
    name = $3
    if (name in sampled) err("TYPE for " name " after its samples")
    if ($4 !~ /^(counter|gauge|histogram|summary|untyped)$/) err("unknown TYPE " $4 " for " name)
    type[name] = $4
    next
}
/^#/ { next }
{
    if ($0 !~ /^[a-z_]+(\{[^}]*\})? (NaN|[-+0-9.eE]+|\+Inf)$/) {
        err("malformed sample: " $0)
        next
    }
    name = $1
    sub(/\{.*/, "", name)
    fam = base(name)
    if (!(fam in help)) err("sample for " fam " without HELP")
    if (!(fam in type)) err("sample for " fam " without TYPE")
    sampled[fam] = 1
    nsamples++

    if (type[fam] == "histogram" && name ~ /_bucket$/) {
        # Series key: the label set without its le pair.
        series = $1
        sub(/^[a-z_]+\{/, "", series); sub(/\}$/, "", series)
        le = series
        sub(/.*le="/, "", le); sub(/".*/, "", le)
        gsub(/(^|,)le="[^"]*"/, "", series)
        key = fam "{" series "}"
        if (key in lastbucket && $2 + 0 < lastbucket[key] + 0 && le != "+Inf")
            err("non-cumulative bucket for " key " at le=" le)
        lastbucket[key] = $2
        if (le == "+Inf") infbucket[key] = $2
    }
    if (type[fam] == "histogram" && name ~ /_count$/ && name == fam "_count") {
        series = $1
        if (series ~ /\{/) { sub(/^[a-z_]+\{/, "", series); sub(/\}$/, "", series) }
        else series = ""
        key = fam "{" series "}"
        if (!(key in infbucket)) err("histogram " key " has no le=\"+Inf\" bucket before _count")
        else if (infbucket[key] + 0 != $2 + 0)
            err("histogram " key ": +Inf bucket " infbucket[key] " != count " $2)
    }
}
END {
    if (!nsamples) { print "metrics-lint: no samples found"; bad = 1 }
    exit bad
}
' "$file"

echo "metrics-lint: ok"
