#!/usr/bin/env bash
# serve-smoke: boots the planarsid daemon, fires a scripted query burst
# with curl, checks the answers, then exercises the snapshot warm-restart
# path end to end (used by `make serve-smoke` and CI).
#
# The host is the 3x3 grid, small enough that every expected answer is
# known exactly: C4 occurs (32 occurrences at seed 1, counting
# automorphic images), the triangle does not, and the connectivity is 2.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
pid=""
trap '[ -n "$pid" ] && kill "$pid" 2>/dev/null; rm -rf "$tmp"' EXIT
. scripts/lib.sh

go build -o "$tmp/planarsid" ./cmd/planarsid
write_grid3_fixture "$tmp/grid.edges"

# boot <extra flags...>: this script's daemon configuration on top of
# the shared ephemeral-port boot helper.
boot() {
    boot_daemon -graph grid="$tmp/grid.edges" -window 5ms \
        -snapshot-dir "$tmp/snaps" "$@"
}
stop() { stop_daemon; }

c4='{"graph":"grid","pattern":{"n":4,"edges":[[0,1],[1,2],[2,3],[3,0]]}}'
c3='{"graph":"grid","pattern":{"n":3,"edges":[[0,1],[1,2],[2,0]]}}'

boot -debug-addr 127.0.0.1:0 -trace-log "$tmp/trace.jsonl"
check healthz ok "$(curl -sf "http://$addr/healthz")"

# Concurrent query burst: 4 decides + 4 counts of the same pattern land
# in shared micro-batches.
curls=()
for i in 1 2 3 4; do
    curl -sf -X POST "http://$addr/decide" -d "$c4" > "$tmp/decide$i" & curls+=($!)
    curl -sf -X POST "http://$addr/count" -d "$c4" > "$tmp/count$i" & curls+=($!)
done
wait "${curls[@]}"
for i in 1 2 3 4; do
    check "decide#$i" '"found":true' "$(cat "$tmp/decide$i")"
    check "count#$i" '"count":32' "$(cat "$tmp/count$i")"
done

check "decide C3" '"found":false' "$(curl -sf -X POST "http://$addr/decide" -d "$c3")"
check connectivity '"connectivity":2' "$(curl -sf -X POST "http://$addr/connectivity" -d '{"graph":"grid"}')"
check register '"n":3' "$(printf '0 1\n1 2\n' | curl -sf -X POST "http://$addr/graphs/path" --data-binary @-)"
check "decide path" '"found":true' "$(curl -sf -X POST "http://$addr/find" -d '{"graph":"path","pattern":{"n":2,"edges":[[0,1]]}}')"
check stats '"batches"' "$(curl -sf "http://$addr/stats")"
check "stats percentiles" '"p99Millis"' "$(curl -sf "http://$addr/stats")"

# A traced query returns its band timeline inline, with a nonzero DP
# cost breakdown attached.
traced=$(curl -sf -X POST "http://$addr/decide?trace=1" -d "$c4")
check "trace spans" '"name":"band"' "$traced"
check "trace cost" '"emissions":' "$traced"

# Request correlation: every response carries X-Request-Id, and an
# inbound W3C traceparent is echoed back under the same trace-id.
tp_in='00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01'
hdrs=$(curl -sf -D - -o /dev/null -X POST -H "traceparent: $tp_in" "http://$addr/decide" -d "$c4")
echo "$hdrs" | grep -qi '^x-request-id: [0-9a-f]\{16\}' || fail "request id header" "$hdrs"
echo "$hdrs" | grep -qi '^traceparent: 00-4bf92f3577b34da6a3ce929d0e0e4736-[0-9a-f]\{16\}-01' \
    || fail "traceparent echo" "$hdrs"
echo "serve-smoke: request correlation headers ok"

# Prometheus exposition: the families exist and the decide counter saw
# the burst above (>= 9 ok requests so far on this endpoint).
metrics=$(curl -sf "http://$addr/metrics")
check "metrics type" 'TYPE planarsi_http_request_duration_seconds histogram' "$metrics"
check "metrics buckets" 'planarsi_http_request_duration_seconds_bucket{endpoint="decide",le="+Inf"}' "$metrics"
check "metrics sched" 'planarsi_sched_batches_total' "$metrics"
decide_ok=$(echo "$metrics" | sed -n 's/^planarsi_http_requests_total{endpoint="decide",result="ok"} //p')
if [ -z "$decide_ok" ] || [ "$decide_ok" -lt 6 ]; then
    fail "metrics decide counter" "${decide_ok:-missing}"
fi
echo "serve-smoke: metrics ok (decide ok=$decide_ok)"

# Introspection families added by the cost/trace work are all present.
check "metrics memo" 'planarsi_index_memo_hits_total{class="cover",graph="grid"}' "$metrics"
check "metrics epoch" 'planarsi_index_epoch{graph="grid"} 0' "$metrics"
check "metrics pool" 'planarsi_pool_steals_total' "$metrics"
check "metrics trace-dropped" 'planarsi_trace_dropped_total' "$metrics"
check "metrics go runtime" 'planarsi_go_goroutines' "$metrics"

# The whole exposition must survive the structural lint (format 0.0.4:
# headers before samples, cumulative histogram buckets, +Inf == _count).
echo "$metrics" | bash scripts/metrics-lint.sh || fail "metrics lint" "see above"

# The debug/pprof listener runs on its own port, off the query path.
dbg=$(sed -n 's/.*debug\/pprof listening on \([0-9.:]*\)$/\1/p' "$tmp/log" | head -1)
[ -n "$dbg" ] || fail "debug addr" "$(cat "$tmp/log")"
curl -sf --max-time 5 "http://$dbg/debug/pprof/" > /dev/null || fail "pprof index" "curl http://$dbg/debug/pprof/"
echo "serve-smoke: debug/pprof ok ($dbg)"

# Every instrumented request lands one JSONL record in the trace log;
# traced requests additionally carry spans and cost.
[ -s "$tmp/trace.jsonl" ] || fail "trace log" "empty $tmp/trace.jsonl"
grep -q '"requestId"' "$tmp/trace.jsonl" || fail "trace log requestId" "$(head -1 "$tmp/trace.jsonl")"
grep -q '"spans"' "$tmp/trace.jsonl" || fail "trace log spans" "no traced record in $tmp/trace.jsonl"
echo "serve-smoke: trace log ok ($(wc -l < "$tmp/trace.jsonl") records)"

# On-demand checkpoint: the response lists the warmed grid cache and the
# file lands in the snapshot directory.
check snapshot '"name":"grid"' "$(curl -sf -X POST "http://$addr/snapshot")"
[ -f "$tmp/snaps/grid.snap" ] || fail snapshot-file "missing $tmp/snaps/grid.snap"
echo "serve-smoke: snapshot file ok"

stop
echo "serve-smoke: graceful shutdown ok (snapshots persisted)"

# Warm restart: the daemon must restore the grid from its snapshot
# (skipping the edge-list preload and the preprocessing), report a
# non-empty restored cover cache in the log, and serve identical
# answers.
boot
warm=$(grep "warm boot: restored graph grid" "$tmp/log" || true)
case "$warm" in
    *"covers="[1-9]*) echo "serve-smoke: warm boot ok ($(echo "$warm" | sed 's/.*(\(.*\)).*/\1/'))" ;;
    *) fail "warm boot" "$(cat "$tmp/log")" ;;
esac
check "warm skip-preload" "already restored from snapshot" "$(cat "$tmp/log")"
check "warm count" '"count":32' "$(curl -sf -X POST "http://$addr/count" -d "$c4")"
check "warm decide C3" '"found":false' "$(curl -sf -X POST "http://$addr/decide" -d "$c3")"
check "warm connectivity" '"connectivity":2' "$(curl -sf -X POST "http://$addr/connectivity" -d '{"graph":"grid"}')"
stop
echo "serve-smoke: warm graceful shutdown ok"
echo "serve-smoke: PASS"
