#!/usr/bin/env bash
# mutation-smoke: the live-graph mutation CI lane. Boots planarsid,
# streams edit batches against a 6x6 grid WHILE planarsiload drives
# concurrent query traffic at it, then proves the incremental index
# honest two ways (used by `make mutation-smoke` and CI; RACE=1 builds
# the daemon with -race):
#
#   - zero wrong answers: after the churn, a second graph ("oracle") is
#     registered from the canonical mutated edge list — surviving edges
#     in original order, then the additions in application order, which
#     by the WithEdits contract is bit-identical to the live graph — and
#     every query kind must answer identically on both;
#   - surgical invalidation: planarsi_index_invalidations_total for the
#     band class stays strictly below the full-rebuild count (invalidated
#     + retained, i.e. some bands survived every migration verbatim), and
#     the epoch gauge equals the number of accepted batches;
#   - the rejection paths answer 422 (invalid batch) and 409 (stale
#     ifEpoch) without advancing the epoch;
#   - concurrent traffic sees no errors: queries racing the edits land on
#     a consistent pre- or post-edit generation, never an error.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
pid=""
trap '[ -n "$pid" ] && kill "$pid" 2>/dev/null; rm -rf "$tmp"' EXIT
. scripts/lib.sh

go build ${RACE:+-race} -o "$tmp/planarsid" ./cmd/planarsid
go build ${RACE:+-race} -o "$tmp/planarsiload" ./cmd/planarsiload

gen_grid_edges 6 6 > "$tmp/live.edges"

boot_daemon -graph live="$tmp/live.edges" -window 2ms
check healthz ok "$(curl -sf "http://$addr/healthz")"

# Concurrent traffic for the whole edit stream: closed-loop decide/count/
# find workers against the live graph. Wrong answers are impossible to
# assert mid-churn (either generation is correct); what this proves is
# that no query errors while the graph mutates under it.
"$tmp/planarsiload" -addr "http://$addr" -graph live \
    -mode closed -concurrency 4 -duration 6s -out "$tmp/load-report.json" &
loadpid=$!

# edit <name> <want-status> <json>: one edit batch, asserting the status.
edit() {
    st=$(req "$tmp/edit.$1" "/graphs/live/edges" "$3")
    [ "$st" = "$2" ] || fail "$1 status (want $2)" "$st: $(cat "$tmp/edit.$1")"
    echo "$SMOKE: $1 ok"
}

# Six single-edit batches: four face diagonals in (planarity-gated, one
# diagonal per face keeps the grid planar) and two original grid edges
# out. Each advances the epoch by one while the load generator hammers
# the graph.
edit batch1 200 '{"add":[[0,7]],"requirePlanar":true}'
sleep 0.4
edit batch2 200 '{"add":[[2,9]],"requirePlanar":true}'
sleep 0.4
edit batch3 200 '{"remove":[[0,1]]}'
sleep 0.4
edit batch4 200 '{"add":[[14,21]],"requirePlanar":true}'
sleep 0.4
edit batch5 200 '{"remove":[[20,21]]}'
sleep 0.4
edit batch6 200 '{"add":[[24,31]],"requirePlanar":true}'
check "epoch progression" '"epoch":6' "$(cat "$tmp/edit.batch6")"
check "migration counters" '"bands":{"kept":' "$(cat "$tmp/edit.batch6")"

# Rejection paths, neither advancing the epoch: re-adding a present edge
# is 422 (validation), a stale ifEpoch is 409 (lost race).
edit dup-add 422 '{"add":[[2,9]]}'
edit stale-epoch 409 '{"add":[[4,11]],"ifEpoch":0}'

rc=0; wait "$loadpid" || rc=$?
[ "$rc" -eq 0 ] || { echo "mutation-smoke: planarsiload exited $rc"; cat "$tmp/load-report.json" 2>/dev/null; exit 1; }
if grep -Eq '"errors": [1-9]' "$tmp/load-report.json"; then
    echo "mutation-smoke: concurrent traffic saw errors during edits"
    cat "$tmp/load-report.json"; exit 1
fi
echo "mutation-smoke: concurrent load clean ($(grep -o '"sent": [0-9]*' "$tmp/load-report.json" | head -1 | grep -o '[0-9]*') requests)"

# Fresh-build oracle: the canonical mutated edge list is the surviving
# original edges in original order followed by the additions in
# application order — by the WithEdits determinism contract the oracle
# Index is bit-identical to the migrated one, so every answer must match.
{
    awk '!(($1 == 0 && $2 == 1) || ($1 == 20 && $2 == 21))' "$tmp/live.edges"
    printf '0 7\n2 9\n14 21\n24 31\n'
} > "$tmp/oracle.edges"
st=$(curl -s -o "$tmp/reg" -w '%{http_code}' -X POST "http://$addr/graphs/oracle" --data-binary @"$tmp/oracle.edges")
[ "$st" = 201 ] || fail "oracle register" "$st: $(cat "$tmp/reg")"

# ask <outfile> <path> <graph> <pattern-json-or-empty>: run one query and
# strip the graph name so live/oracle answers are comparable bytes.
ask() {
    body="{\"graph\":\"$3\"${4:+,$4}}"
    st=$(req "$tmp/raw" "$2" "$body"); [ "$st" = 200 ] || fail "query $2 on $3" "$st: $(cat "$tmp/raw")"
    sed "s/\"graph\":\"$3\"/\"graph\":\"_\"/" "$tmp/raw" > "$1"
}

c4='"pattern":{"n":4,"edges":[[0,1],[1,2],[2,3],[3,0]]}'
c3='"pattern":{"n":3,"edges":[[0,1],[1,2],[2,0]]}'
p5='"pattern":{"n":5,"edges":[[0,1],[1,2],[2,3],[3,4]]}'
wrong=0
for q in "decide:$c4" "decide:$c3" "count:$c4" "count:$c3" "count:$p5" "connectivity:"; do
    path="/${q%%:*}"; pat="${q#*:}"
    ask "$tmp/a.live" "$path" live "$pat"
    ask "$tmp/a.oracle" "$path" oracle "$pat"
    if cmp -s "$tmp/a.live" "$tmp/a.oracle"; then
        echo "mutation-smoke: $path ${pat:+pattern }answers identical ok"
    else
        echo "mutation-smoke: WRONG ANSWER on $path: live=$(cat "$tmp/a.live") oracle=$(cat "$tmp/a.oracle")"
        wrong=1
    fi
done
[ "$wrong" -eq 0 ] || { cat "$tmp/log"; exit 1; }

# Invalidation accounting: the epoch gauge saw all six batches, and band
# invalidations stayed strictly below the full-rebuild count — some bands
# survived every migration verbatim, which is the whole point.
metrics=$(curl -sf "http://$addr/metrics")
mval() { echo "$metrics" | awk -v k="$1" '$1==k{print $2}'; }
[ "$(mval 'planarsi_index_epoch{graph="live"}')" = 6 ] || \
    fail "epoch gauge" "$(mval 'planarsi_index_epoch{graph="live"}')"
inval=$(mval 'planarsi_index_invalidations_total{class="band",graph="live"}')
retained=$(mval 'planarsi_index_retained_total{class="band",graph="live"}')
[ -n "$inval" ] && [ -n "$retained" ] || fail "invalidation families" "inval='$inval' retained='$retained'"
total=$((${inval%.*} + ${retained%.*}))
if [ "$total" -eq 0 ] || [ "${inval%.*}" -ge "$total" ]; then
    fail "surgical invalidation" "invalidated=$inval of $total migrated bands (want strictly fewer)"
fi
echo "mutation-smoke: surgical invalidation ok (bands invalidated=$inval retained=$retained)"

# The extended exposition still passes the structural lint.
echo "$metrics" | bash scripts/metrics-lint.sh || fail "metrics lint" "see above"

stop_daemon
echo "mutation-smoke: graceful shutdown ok"
echo "mutation-smoke: PASS"
