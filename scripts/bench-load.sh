#!/usr/bin/env bash
# bench-load: short planarsiload smoke against a freshly booted planarsid
# (used by `make bench-load` and the bench-smoke CI job). Checks that
# both arrival modes complete, the JSON report carries percentiles for
# every mode, and no request errored. BENCH_6.json documents the same
# run at full length.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
pid=""
trap '[ -n "$pid" ] && kill "$pid" 2>/dev/null; rm -rf "$tmp"' EXIT

go build -o "$tmp/planarsid" ./cmd/planarsid
go build -o "$tmp/planarsiload" ./cmd/planarsiload

"$tmp/planarsid" -addr 127.0.0.1:0 -runs 4 -adaptive-window > "$tmp/log" 2>&1 &
pid=$!
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/.*listening on \([0-9.:]*\)$/\1/p' "$tmp/log" | head -1)
    if [ -n "$addr" ] && curl -sf --max-time 2 "http://$addr/healthz" >/dev/null 2>&1; then
        break
    fi
    addr=""
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "bench-load: daemon did not become ready"; cat "$tmp/log"; exit 1
fi

"$tmp/planarsiload" -addr "http://$addr" -register-grid 8x8 -mode both \
    -rate 25 -concurrency 2 -duration 2s -out "$tmp/report.json"

for frag in '"open"' '"closed"' '"p99Millis"' '"throughputRps"'; do
    if ! grep -q "$frag" "$tmp/report.json"; then
        echo "bench-load: report missing $frag"; cat "$tmp/report.json"; exit 1
    fi
done
if grep -Eq '"errors": [1-9]' "$tmp/report.json"; then
    echo "bench-load: report shows request errors"; cat "$tmp/report.json"; exit 1
fi

# Regression guard: closed-mode overall p50 against the BENCH_6.json
# baseline (tracing disabled on both sides). The tracing-off overhead of
# the cost/trace work is one nil check per engine flush site — well under
# 2% by construction — but a short CI run on shared hardware is far
# noisier than that, so the tripwire only fires on a multiple of the
# baseline (override with BENCH_GUARD_FACTOR; 0 disables).
factor="${BENCH_GUARD_FACTOR:-4}"
if [ "$factor" != "0" ] && command -v python3 >/dev/null 2>&1; then
    python3 - "$tmp/report.json" "$factor" <<'EOF'
import json, sys
report = json.load(open(sys.argv[1]))
factor = float(sys.argv[2])
baseline = json.load(open("BENCH_6.json"))["modes"]["closed"]["overall"]["p50Millis"]
p50 = report["modes"]["closed"]["overall"]["p50Millis"]
limit = baseline * factor
if p50 > limit:
    sys.exit(f"bench-load: closed p50 {p50}ms exceeds {limit}ms "
             f"(baseline {baseline}ms x {factor})")
print(f"bench-load: p50 guard ok (closed p50 {p50}ms <= {limit}ms)")
EOF
fi
echo "bench-load: PASS"
