# lib.sh — shared helpers for the smoke scripts (serve-smoke,
# chaos-smoke, mutation-smoke). Source after setting up:
#
#   tmp=$(mktemp -d)
#   pid=""
#   trap '[ -n "$pid" ] && kill "$pid" 2>/dev/null; rm -rf "$tmp"' EXIT
#   . "$(dirname "$0")/lib.sh"
#
# Callers build the daemon to "$tmp/planarsid" themselves (flags like
# RACE differ per script). $SMOKE prefixes every message and defaults to
# the calling script's name.

SMOKE=${SMOKE:-$(basename "$0" .sh)}

fail() { echo "$SMOKE: $1 FAILED: got '$2'"; cat "$tmp/log"; exit 1; }

check() { # check <name> <expected-fragment> <actual>
    case "$3" in
        *"$2"*) echo "$SMOKE: $1 ok" ;;
        *) fail "$1" "$3" ;;
    esac
}

# write_grid3_fixture <file>: the canonical 3x3 grid host (9 vertices,
# 12 edges; C4 count 32 at seed 1, no triangles, connectivity 2).
write_grid3_fixture() {
    cat > "$1" <<'EOF'
n 9
0 1
1 2
3 4
4 5
6 7
7 8
0 3
3 6
1 4
4 7
2 5
5 8
EOF
}

# gen_grid_edges <rows> <cols>: an RxC grid as edge-list text on stdout,
# horizontals row-major then verticals — a fixed order, so a second
# graph registered from the same stream is built bit-identically.
gen_grid_edges() {
    awk -v r="$1" -v c="$2" 'BEGIN{
        for (i = 0; i < r; i++) for (j = 0; j+1 < c; j++) print i*c+j, i*c+j+1;
        for (i = 0; i+1 < r; i++) for (j = 0; j < c; j++) print i*c+j, (i+1)*c+j;
    }'
}

# boot_daemon <flags...>: start "$tmp/planarsid" on an ephemeral port
# with the given flags, parse the resolved address from the log into
# $addr, and poll /healthz until the daemon actually serves — no fixed
# sleeps, no bind collisions when CI jobs run in parallel.
boot_daemon() {
    : > "$tmp/log"
    "$tmp/planarsid" -addr 127.0.0.1:0 "$@" > "$tmp/log" 2>&1 &
    pid=$!
    addr=""
    for _ in $(seq 1 100); do
        # Anchor on the daemon's own line — "debug/pprof listening on"
        # may appear first when -debug-addr is set.
        addr=$(sed -n 's/.*planarsid: listening on \([0-9.:]*\)$/\1/p' "$tmp/log" | head -1)
        if [ -n "$addr" ] && curl -sf --max-time 2 "http://$addr/healthz" >/dev/null 2>&1; then
            return 0
        fi
        sleep 0.1
    done
    echo "$SMOKE: daemon did not become ready"; cat "$tmp/log"; exit 1
}

# stop_daemon: graceful shutdown, asserting a clean exit.
stop_daemon() {
    kill -TERM "$pid"
    rc=0; wait "$pid" || rc=$?
    pid=""
    if [ "$rc" -ne 0 ]; then
        echo "$SMOKE: graceful shutdown FAILED (exit $rc)"; cat "$tmp/log"; exit 1
    fi
}

# req <outfile> <path> [json-body]: POST, body to outfile, headers to
# "$tmp/hdr", echo the HTTP status. Never uses -f: non-2xx statuses are
# often the point.
req() {
    curl -s -o "$1" -D "$tmp/hdr" -w '%{http_code}' \
        -X POST "http://$addr$2" ${3:+-d "$3"}
}

# same_bytes <name> <path> <json> <baseline-file>: the answer must be
# byte-identical to the captured baseline.
same_bytes() {
    st=$(req "$tmp/now" "$2" "$3"); [ "$st" = 200 ] || fail "$1 status" "$st"
    cmp -s "$tmp/now" "$4" || fail "$1 byte-identity" "$(cat "$tmp/now") != $(cat "$4")"
    echo "$SMOKE: $1 byte-identical ok"
}
