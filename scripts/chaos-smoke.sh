#!/usr/bin/env bash
# chaos-smoke: boots planarsid under the deterministic fault-injection
# harness (internal/fault, armed with -fault) and proves the resilience
# layer end to end (used by `make chaos-smoke` and CI; RACE=1 builds the
# daemon with -race):
#
#   - a query panic at the index boundary is answered 500 with an opaque
#     incident id while the full stack lands in the log, daemon stays up
#   - two consecutive panics open the (grid, decide) circuit breaker:
#     503 + Retry-After until the cooldown elapses
#   - the half-open probe panics *inside* the cover build (dp.panic), so
#     the poisoned memo must de-poison and the breaker re-opens
#   - the next probe succeeds with answers byte-identical to a fault-free
#     baseline run, and the breaker closes
#   - /metrics exposes the exact incident/open/reject counts
#   - an oversized pattern is refused 400 at the boundary
#   - a failed snapshot write is a 500 with no partial file; the retry
#     lands the checkpoint
#   - a failed snapshot read at boot falls back to a cold preload and
#     still serves byte-identical answers (with band latency injected)
#   - planarsiload -chaos survives a probabilistic panic storm with no
#     bare 500s/503s (every failure is either incident-tagged or
#     Retry-After-tagged)
#
# Everything is deterministic: -window 0 makes every query a singleton
# batch, so the Nth query consumes exactly the Nth query.panic hit, and
# the fault plan's per-site hit counters make the firing sequence
# independent of scheduling.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
pid=""
trap '[ -n "$pid" ] && kill "$pid" 2>/dev/null; rm -rf "$tmp"' EXIT
. scripts/lib.sh

go build ${RACE:+-race} -o "$tmp/planarsid" ./cmd/planarsid
go build ${RACE:+-race} -o "$tmp/planarsiload" ./cmd/planarsiload
write_grid3_fixture "$tmp/grid.edges"

# boot <snapdir> [extra flags...]: this script's daemon configuration
# (flags repeat last-wins, so legs may override the defaults below) on
# top of the shared ephemeral-port boot helper.
boot() {
    snapdir=$1; shift
    boot_daemon -graph grid="$tmp/grid.edges" \
        -window 0 -breaker-fails 2 -breaker-cooldown 1s \
        -snapshot-dir "$snapdir" "$@"
}
stop() { stop_daemon; }

c4='{"graph":"grid","pattern":{"n":4,"edges":[[0,1],[1,2],[2,3],[3,0]]}}'
c3='{"graph":"grid","pattern":{"n":3,"edges":[[0,1],[1,2],[2,0]]}}'
conn='{"graph":"grid"}'

# ---- Leg 0: fault-free baseline. The chaos legs must reproduce these
# bytes exactly after recovering.
boot "$tmp/snaps-baseline"
st=$(req "$tmp/base.decide" /decide "$c4");  [ "$st" = 200 ] || fail "baseline decide" "$st"
st=$(req "$tmp/base.count" /count "$c4");    [ "$st" = 200 ] || fail "baseline count" "$st"
st=$(req "$tmp/base.c3" /decide "$c3");      [ "$st" = 200 ] || fail "baseline c3" "$st"
st=$(req "$tmp/base.conn" /connectivity "$conn"); [ "$st" = 200 ] || fail "baseline connectivity" "$st"
check "baseline answers" '"count":32' "$(cat "$tmp/base.count")"
stop
echo "chaos-smoke: baseline captured"

# ---- Leg 1: panic storm -> breaker lifecycle -> byte-identical recovery.
# query.panic fires at the index boundary (before the cover build), so
# queries 1 and 2 panic without touching the band DPs; the half-open
# probe (query 4) is then the FIRST band DP attempt ever, and dp.panic
# first:1 lands inside the cover memo's once.Do — the de-poisoning path.
boot "$tmp/snaps" -fault 'query.panic=first:2,dp.panic=first:1,snapshot.write=first:1'
check "fault banner" 'FAULT INJECTION ACTIVE' "$(cat "$tmp/log")"

st=$(req "$tmp/q1" /decide "$c4"); [ "$st" = 500 ] || fail "q1 status (want 500)" "$st"
check "q1 incident id" '"incident":"inc-' "$(cat "$tmp/q1")"
st=$(req "$tmp/q2" /decide "$c4"); [ "$st" = 500 ] || fail "q2 status (want 500)" "$st"
check "q2 incident id" '"incident":"inc-' "$(cat "$tmp/q2")"
# Incidents land as structured records: the injected panic value plus
# the full goroutine stack. (The fragment tracks slog's key=value text
# format, not the legacy IncidentLogf flat format.)
check "incident panic logged" 'panic="fault: injected panic at query.panic' "$(cat "$tmp/log")"
check "incident stack logged" 'stack="goroutine' "$(cat "$tmp/log")"

st=$(req "$tmp/q3" /decide "$c4"); [ "$st" = 503 ] || fail "q3 status (want 503, breaker open)" "$st"
grep -qi '^retry-after:' "$tmp/hdr" || fail "q3 Retry-After header" "$(cat "$tmp/hdr")"
echo "chaos-smoke: breaker open (503 + Retry-After) ok"

sleep 1.2
st=$(req "$tmp/q4" /decide "$c4"); [ "$st" = 500 ] || fail "q4 status (want 500, dp.panic in prepare)" "$st"
check "q4 incident id" '"incident":"inc-' "$(cat "$tmp/q4")"
st=$(req "$tmp/q5" /decide "$c4"); [ "$st" = 503 ] || fail "q5 status (want 503, breaker re-open)" "$st"
grep -qi '^retry-after:' "$tmp/hdr" || fail "q5 Retry-After header" "$(cat "$tmp/hdr")"
echo "chaos-smoke: half-open probe panicked in cover build, breaker re-opened ok"

sleep 1.2
same_bytes "recovered decide" /decide "$c4" "$tmp/base.decide"
same_bytes "recovered count" /count "$c4" "$tmp/base.count"
same_bytes "recovered miss" /decide "$c3" "$tmp/base.c3"
same_bytes "recovered connectivity" /connectivity "$conn" "$tmp/base.conn"

# The exact incident/breaker accounting on /metrics: 3 incidents (q1,
# q2, q4), the decide breaker opened twice, rejected twice (q3, q5),
# and is closed (0) again after the successful probe.
metrics=$(curl -sf "http://$addr/metrics")
mval() { echo "$metrics" | awk -v k="$1" '$1==k{print $2}'; }
[ "$(mval planarsi_incidents_total)" = 3 ] || fail "metrics incidents" "$(mval planarsi_incidents_total)"
[ "$(mval 'planarsi_breaker_opens_total{graph="grid",kind="decide"}')" = 2 ] || \
    fail "metrics breaker opens" "$(mval 'planarsi_breaker_opens_total{graph="grid",kind="decide"}')"
[ "$(mval 'planarsi_breaker_rejected_total{graph="grid",kind="decide"}')" = 2 ] || \
    fail "metrics breaker rejected" "$(mval 'planarsi_breaker_rejected_total{graph="grid",kind="decide"}')"
[ "$(mval 'planarsi_breaker_state{graph="grid",kind="decide"}')" = 0 ] || \
    fail "metrics breaker closed" "$(mval 'planarsi_breaker_state{graph="grid",kind="decide"}')"
check "metrics shed family" 'planarsi_shed_total' "$metrics"
echo "chaos-smoke: metrics accounting ok (3 incidents, 2 opens, 2 rejects, closed)"

# Oversized pattern: refused 400 at the boundary, never reaching the
# engines (k > 16 would overflow the DP's bitmask state space).
edges=""
for i in $(seq 0 15); do edges="$edges[$i,$((i+1))],"; done
big='{"graph":"grid","pattern":{"n":17,"edges":['${edges%,}']}}'
st=$(req "$tmp/big" /decide "$big"); [ "$st" = 400 ] || fail "oversized status (want 400)" "$st"
check "oversized message" 'over the engine limit' "$(cat "$tmp/big")"

# Snapshot fault: the first checkpoint fails cleanly (500, injected
# error surfaced, no partial file), the retry lands it.
st=$(req "$tmp/snap1" /snapshot); [ "$st" = 500 ] || fail "snapshot#1 status (want 500)" "$st"
check "snapshot#1 error" 'fault: injected' "$(cat "$tmp/snap1")"
[ ! -f "$tmp/snaps/grid.snap" ] || fail "snapshot#1 partial file" "$tmp/snaps/grid.snap exists"
st=$(req "$tmp/snap2" /snapshot); [ "$st" = 200 ] || fail "snapshot#2 status (want 200)" "$st"
check "snapshot#2 saved" '"name":"grid"' "$(cat "$tmp/snap2")"
[ -f "$tmp/snaps/grid.snap" ] || fail "snapshot#2 file" "missing $tmp/snaps/grid.snap"
echo "chaos-smoke: snapshot write fault ok (500 + no partial file, retry landed)"

stop
echo "chaos-smoke: graceful shutdown after panic storm ok"

# ---- Leg 2: warm restart under fault. The snapshot restore fails
# (injected read error), the daemon falls back to the cold edge-list
# preload, and — with latency injected into the first band DPs — still
# serves byte-identical answers.
boot "$tmp/snaps" -fault 'snapshot.read=first:1,band.latency=first:6;dur:2ms'
check "restore fallback" 'continuing cold' "$(cat "$tmp/log")"
check "cold preload" 'loaded graph grid' "$(cat "$tmp/log")"
same_bytes "cold-fallback count" /count "$c4" "$tmp/base.count"
same_bytes "cold-fallback connectivity" /connectivity "$conn" "$tmp/base.conn"
stop
echo "chaos-smoke: warm-restart fault fallback ok"

# ---- Leg 3: probabilistic panic storm under load. Micro-batching is
# back on (retry-as-singleton path in play); every failed request must
# be either a tagged incident (500 + id) or tagged unavailable (503 +
# Retry-After) — a bare 500/503 under chaos means a resilience bug.
boot "$tmp/snaps-load" -window 2ms -breaker-fails 3 -breaker-cooldown 250ms \
    -fault 'query.panic=p:0.25' -fault-seed 42
"$tmp/planarsiload" -addr "http://$addr" -register-grid 8x8 -graph load \
    -mode closed -concurrency 4 -duration 2s -chaos -out "$tmp/chaos-report.json"
if grep -Eq '"errors": [1-9]' "$tmp/chaos-report.json"; then
    echo "chaos-smoke: chaos load saw bare failures"; cat "$tmp/chaos-report.json"; exit 1
fi
if grep -Eq '"bareFaults"|"bareBusy"' "$tmp/chaos-report.json"; then
    echo "chaos-smoke: chaos load saw untagged 500s/503s"; cat "$tmp/chaos-report.json"; exit 1
fi
grep -Eq '"incidents"|"unavailable"' "$tmp/chaos-report.json" || \
    fail "chaos load fired no faults" "$(cat "$tmp/chaos-report.json")"
stop
echo "chaos-smoke: probabilistic load survival ok"
echo "chaos-smoke: PASS"
