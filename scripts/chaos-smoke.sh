#!/usr/bin/env bash
# chaos-smoke: boots planarsid under the deterministic fault-injection
# harness (internal/fault, armed with -fault) and proves the resilience
# layer end to end (used by `make chaos-smoke` and CI; RACE=1 builds the
# daemon with -race):
#
#   - a query panic at the index boundary is answered 500 with an opaque
#     incident id while the full stack lands in the log, daemon stays up
#   - two consecutive panics open the (grid, decide) circuit breaker:
#     503 + Retry-After until the cooldown elapses
#   - the half-open probe panics *inside* the cover build (dp.panic), so
#     the poisoned memo must de-poison and the breaker re-opens
#   - the next probe succeeds with answers byte-identical to a fault-free
#     baseline run, and the breaker closes
#   - /metrics exposes the exact incident/open/reject counts
#   - an oversized pattern is refused 400 at the boundary
#   - a failed snapshot write is a 500 with no partial file; the retry
#     lands the checkpoint
#   - a failed snapshot read at boot falls back to a cold preload and
#     still serves byte-identical answers (with band latency injected)
#   - planarsiload -chaos survives a probabilistic panic storm with no
#     bare 500s/503s (every failure is either incident-tagged or
#     Retry-After-tagged)
#
# Everything is deterministic: -window 0 makes every query a singleton
# batch, so the Nth query consumes exactly the Nth query.panic hit, and
# the fault plan's per-site hit counters make the firing sequence
# independent of scheduling.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
pid=""
trap '[ -n "$pid" ] && kill "$pid" 2>/dev/null; rm -rf "$tmp"' EXIT

go build ${RACE:+-race} -o "$tmp/planarsid" ./cmd/planarsid
go build ${RACE:+-race} -o "$tmp/planarsiload" ./cmd/planarsiload

cat > "$tmp/grid.edges" <<'EOF'
n 9
0 1
1 2
3 4
4 5
6 7
7 8
0 3
3 6
1 4
4 7
2 5
5 8
EOF

fail() { echo "chaos-smoke: $1 FAILED: got '$2'"; cat "$tmp/log"; exit 1; }
check() { # check <name> <expected-fragment> <actual>
    case "$3" in
        *"$2"*) echo "chaos-smoke: $1 ok" ;;
        *) fail "$1" "$3" ;;
    esac
}

# req <outfile> <path> [json-body]: POST (or GET /metrics-style paths via
# -d omission still POSTs; fine for this script), body to outfile, echo
# the HTTP status. Never uses -f: non-2xx statuses are the point here.
req() {
    curl -s -o "$1" -D "$tmp/hdr" -w '%{http_code}' \
        -X POST "http://$addr$2" ${3:+-d "$3"}
}

# boot <snapdir> [extra flags...]: start the daemon on an ephemeral port
# (flags repeat last-wins, so legs may override the defaults below),
# parse the resolved address from the log, poll /healthz until ready.
boot() {
    snapdir=$1; shift
    : > "$tmp/log"
    "$tmp/planarsid" -addr 127.0.0.1:0 -graph grid="$tmp/grid.edges" \
        -window 0 -breaker-fails 2 -breaker-cooldown 1s \
        -snapshot-dir "$snapdir" "$@" > "$tmp/log" 2>&1 &
    pid=$!
    addr=""
    for _ in $(seq 1 100); do
        addr=$(sed -n 's/.*listening on \([0-9.:]*\)$/\1/p' "$tmp/log" | head -1)
        if [ -n "$addr" ] && curl -sf --max-time 2 "http://$addr/healthz" >/dev/null 2>&1; then
            return 0
        fi
        sleep 0.1
    done
    echo "chaos-smoke: daemon did not become ready"; cat "$tmp/log"; exit 1
}

stop() {
    kill -TERM "$pid"
    rc=0; wait "$pid" || rc=$?
    pid=""
    if [ "$rc" -ne 0 ]; then
        echo "chaos-smoke: graceful shutdown FAILED (exit $rc)"; cat "$tmp/log"; exit 1
    fi
}

c4='{"graph":"grid","pattern":{"n":4,"edges":[[0,1],[1,2],[2,3],[3,0]]}}'
c3='{"graph":"grid","pattern":{"n":3,"edges":[[0,1],[1,2],[2,0]]}}'
conn='{"graph":"grid"}'

# ---- Leg 0: fault-free baseline. The chaos legs must reproduce these
# bytes exactly after recovering.
boot "$tmp/snaps-baseline"
st=$(req "$tmp/base.decide" /decide "$c4");  [ "$st" = 200 ] || fail "baseline decide" "$st"
st=$(req "$tmp/base.count" /count "$c4");    [ "$st" = 200 ] || fail "baseline count" "$st"
st=$(req "$tmp/base.c3" /decide "$c3");      [ "$st" = 200 ] || fail "baseline c3" "$st"
st=$(req "$tmp/base.conn" /connectivity "$conn"); [ "$st" = 200 ] || fail "baseline connectivity" "$st"
check "baseline answers" '"count":32' "$(cat "$tmp/base.count")"
stop
echo "chaos-smoke: baseline captured"

# same_bytes <name> <path> <json> <baseline-file>: the recovered answer
# must be byte-identical to the fault-free baseline.
same_bytes() {
    st=$(req "$tmp/now" "$2" "$3"); [ "$st" = 200 ] || fail "$1 status" "$st"
    cmp -s "$tmp/now" "$4" || fail "$1 byte-identity" "$(cat "$tmp/now") != $(cat "$4")"
    echo "chaos-smoke: $1 byte-identical ok"
}

# ---- Leg 1: panic storm -> breaker lifecycle -> byte-identical recovery.
# query.panic fires at the index boundary (before the cover build), so
# queries 1 and 2 panic without touching the band DPs; the half-open
# probe (query 4) is then the FIRST band DP attempt ever, and dp.panic
# first:1 lands inside the cover memo's once.Do — the de-poisoning path.
boot "$tmp/snaps" -fault 'query.panic=first:2,dp.panic=first:1,snapshot.write=first:1'
check "fault banner" 'FAULT INJECTION ACTIVE' "$(cat "$tmp/log")"

st=$(req "$tmp/q1" /decide "$c4"); [ "$st" = 500 ] || fail "q1 status (want 500)" "$st"
check "q1 incident id" '"incident":"inc-' "$(cat "$tmp/q1")"
st=$(req "$tmp/q2" /decide "$c4"); [ "$st" = 500 ] || fail "q2 status (want 500)" "$st"
check "q2 incident id" '"incident":"inc-' "$(cat "$tmp/q2")"
check "incident stack logged" 'query panic' "$(cat "$tmp/log")"

st=$(req "$tmp/q3" /decide "$c4"); [ "$st" = 503 ] || fail "q3 status (want 503, breaker open)" "$st"
grep -qi '^retry-after:' "$tmp/hdr" || fail "q3 Retry-After header" "$(cat "$tmp/hdr")"
echo "chaos-smoke: breaker open (503 + Retry-After) ok"

sleep 1.2
st=$(req "$tmp/q4" /decide "$c4"); [ "$st" = 500 ] || fail "q4 status (want 500, dp.panic in prepare)" "$st"
check "q4 incident id" '"incident":"inc-' "$(cat "$tmp/q4")"
st=$(req "$tmp/q5" /decide "$c4"); [ "$st" = 503 ] || fail "q5 status (want 503, breaker re-open)" "$st"
grep -qi '^retry-after:' "$tmp/hdr" || fail "q5 Retry-After header" "$(cat "$tmp/hdr")"
echo "chaos-smoke: half-open probe panicked in cover build, breaker re-opened ok"

sleep 1.2
same_bytes "recovered decide" /decide "$c4" "$tmp/base.decide"
same_bytes "recovered count" /count "$c4" "$tmp/base.count"
same_bytes "recovered miss" /decide "$c3" "$tmp/base.c3"
same_bytes "recovered connectivity" /connectivity "$conn" "$tmp/base.conn"

# The exact incident/breaker accounting on /metrics: 3 incidents (q1,
# q2, q4), the decide breaker opened twice, rejected twice (q3, q5),
# and is closed (0) again after the successful probe.
metrics=$(curl -sf "http://$addr/metrics")
mval() { echo "$metrics" | awk -v k="$1" '$1==k{print $2}'; }
[ "$(mval planarsi_incidents_total)" = 3 ] || fail "metrics incidents" "$(mval planarsi_incidents_total)"
[ "$(mval 'planarsi_breaker_opens_total{graph="grid",kind="decide"}')" = 2 ] || \
    fail "metrics breaker opens" "$(mval 'planarsi_breaker_opens_total{graph="grid",kind="decide"}')"
[ "$(mval 'planarsi_breaker_rejected_total{graph="grid",kind="decide"}')" = 2 ] || \
    fail "metrics breaker rejected" "$(mval 'planarsi_breaker_rejected_total{graph="grid",kind="decide"}')"
[ "$(mval 'planarsi_breaker_state{graph="grid",kind="decide"}')" = 0 ] || \
    fail "metrics breaker closed" "$(mval 'planarsi_breaker_state{graph="grid",kind="decide"}')"
check "metrics shed family" 'planarsi_shed_total' "$metrics"
echo "chaos-smoke: metrics accounting ok (3 incidents, 2 opens, 2 rejects, closed)"

# Oversized pattern: refused 400 at the boundary, never reaching the
# engines (k > 16 would overflow the DP's bitmask state space).
edges=""
for i in $(seq 0 15); do edges="$edges[$i,$((i+1))],"; done
big='{"graph":"grid","pattern":{"n":17,"edges":['${edges%,}']}}'
st=$(req "$tmp/big" /decide "$big"); [ "$st" = 400 ] || fail "oversized status (want 400)" "$st"
check "oversized message" 'over the engine limit' "$(cat "$tmp/big")"

# Snapshot fault: the first checkpoint fails cleanly (500, injected
# error surfaced, no partial file), the retry lands it.
st=$(req "$tmp/snap1" /snapshot); [ "$st" = 500 ] || fail "snapshot#1 status (want 500)" "$st"
check "snapshot#1 error" 'fault: injected' "$(cat "$tmp/snap1")"
[ ! -f "$tmp/snaps/grid.snap" ] || fail "snapshot#1 partial file" "$tmp/snaps/grid.snap exists"
st=$(req "$tmp/snap2" /snapshot); [ "$st" = 200 ] || fail "snapshot#2 status (want 200)" "$st"
check "snapshot#2 saved" '"name":"grid"' "$(cat "$tmp/snap2")"
[ -f "$tmp/snaps/grid.snap" ] || fail "snapshot#2 file" "missing $tmp/snaps/grid.snap"
echo "chaos-smoke: snapshot write fault ok (500 + no partial file, retry landed)"

stop
echo "chaos-smoke: graceful shutdown after panic storm ok"

# ---- Leg 2: warm restart under fault. The snapshot restore fails
# (injected read error), the daemon falls back to the cold edge-list
# preload, and — with latency injected into the first band DPs — still
# serves byte-identical answers.
boot "$tmp/snaps" -fault 'snapshot.read=first:1,band.latency=first:6;dur:2ms'
check "restore fallback" 'continuing cold' "$(cat "$tmp/log")"
check "cold preload" 'loaded graph grid' "$(cat "$tmp/log")"
same_bytes "cold-fallback count" /count "$c4" "$tmp/base.count"
same_bytes "cold-fallback connectivity" /connectivity "$conn" "$tmp/base.conn"
stop
echo "chaos-smoke: warm-restart fault fallback ok"

# ---- Leg 3: probabilistic panic storm under load. Micro-batching is
# back on (retry-as-singleton path in play); every failed request must
# be either a tagged incident (500 + id) or tagged unavailable (503 +
# Retry-After) — a bare 500/503 under chaos means a resilience bug.
boot "$tmp/snaps-load" -window 2ms -breaker-fails 3 -breaker-cooldown 250ms \
    -fault 'query.panic=p:0.25' -fault-seed 42
"$tmp/planarsiload" -addr "http://$addr" -register-grid 8x8 -graph load \
    -mode closed -concurrency 4 -duration 2s -chaos -out "$tmp/chaos-report.json"
if grep -Eq '"errors": [1-9]' "$tmp/chaos-report.json"; then
    echo "chaos-smoke: chaos load saw bare failures"; cat "$tmp/chaos-report.json"; exit 1
fi
if grep -Eq '"bareFaults"|"bareBusy"' "$tmp/chaos-report.json"; then
    echo "chaos-smoke: chaos load saw untagged 500s/503s"; cat "$tmp/chaos-report.json"; exit 1
fi
grep -Eq '"incidents"|"unavailable"' "$tmp/chaos-report.json" || \
    fail "chaos load fired no faults" "$(cat "$tmp/chaos-report.json")"
stop
echo "chaos-smoke: probabilistic load survival ok"
echo "chaos-smoke: PASS"
