module planarsi

go 1.24
